#include "net/mesh.h"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.h"

namespace marionette
{

// ------------------------------------------------------------------
// MeshGeometry
// ------------------------------------------------------------------

int
MeshGeometry::hops(PeId src, PeId dst) const
{
    MARIONETTE_ASSERT(src >= 0 && src < rows * cols,
                      "mesh source %d out of range", src);
    MARIONETTE_ASSERT(dst >= 0 && dst < rows * cols,
                      "mesh destination %d out of range", dst);
    int sr = src / cols, sc = src % cols;
    int dr = dst / cols, dc = dst % cols;
    return std::abs(sr - dr) + std::abs(sc - dc);
}

Cycles
MeshGeometry::latency(PeId src, PeId dst) const
{
    int h = hops(src, dst);
    return std::max<Cycles>(1,
                            static_cast<Cycles>(h) * hopLatency);
}

Cycles
MeshGeometry::maxLatency() const
{
    return static_cast<Cycles>(rows - 1 + cols - 1) * hopLatency;
}

std::vector<PeId>
MeshGeometry::xyPath(PeId src, PeId dst) const
{
    MARIONETTE_ASSERT(src >= 0 && src < rows * cols,
                      "mesh source %d out of range", src);
    MARIONETTE_ASSERT(dst >= 0 && dst < rows * cols,
                      "mesh destination %d out of range", dst);
    std::vector<PeId> path;
    int r = src / cols, c = src % cols;
    int dr = dst / cols, dc = dst % cols;
    path.push_back(src);
    // Dimension order: traverse the row (X) first, then the column.
    while (c != dc) {
        c += c < dc ? 1 : -1;
        path.push_back(static_cast<PeId>(r * cols + c));
    }
    while (r != dr) {
        r += r < dr ? 1 : -1;
        path.push_back(static_cast<PeId>(r * cols + c));
    }
    return path;
}

int
MeshGeometry::numLinks() const
{
    // Directed horizontal + vertical links.
    return 2 * (rows * (cols - 1) + cols * (rows - 1));
}

int
MeshGeometry::linkIndex(PeId from, PeId to) const
{
    MARIONETTE_ASSERT(hops(from, to) == 1,
                      "link %d -> %d is not a mesh edge", from, to);
    int fr = from / cols, fc = from % cols;
    int tc = to % cols;
    // Layout: [east | west | south | north] link blocks.
    const int h = rows * (cols - 1);
    const int v = cols * (rows - 1);
    if (fr == to / cols) {
        // Horizontal: (row, min col) identifies the edge.
        int edge = fr * (cols - 1) + std::min(fc, tc);
        return tc > fc ? edge : h + edge;
    }
    // Vertical: (min row, col) identifies the edge.
    int edge = std::min(fr, to / cols) * cols + fc;
    return to > from ? 2 * h + edge : 2 * h + v + edge;
}

// ------------------------------------------------------------------
// MeshRouter
// ------------------------------------------------------------------

MeshRouter::MeshRouter(const MeshGeometry &geom,
                       const std::vector<DeadLink> &dead_links)
    : geom_(geom)
{
    if (dead_links.empty())
        return;
    faulty_ = true;
    linkDead_.assign(static_cast<std::size_t>(geom_.numLinks()), 0);
    for (const DeadLink &l : dead_links) {
        // Both directions of the physical link go down.
        linkDead_[static_cast<std::size_t>(
            geom_.linkIndex(l.a, l.b))] = 1;
        linkDead_[static_cast<std::size_t>(
            geom_.linkIndex(l.b, l.a))] = 1;
    }
}

bool
MeshRouter::linkDead(PeId from, PeId to) const
{
    if (!faulty_)
        return false;
    return linkDead_[static_cast<std::size_t>(
               geom_.linkIndex(from, to))] != 0;
}

const std::vector<PeId> &
MeshRouter::path(PeId src, PeId dst)
{
    const int key = src * geom_.numPes() + dst;
    auto it = paths_.find(key);
    if (it != paths_.end())
        return it->second;

    std::vector<PeId> &out = paths_[key];
    // Healthy pairs keep their dimension-ordered route so faulted
    // configs disturb only the traffic that actually crosses a
    // dead link.
    std::vector<PeId> xy = geom_.xyPath(src, dst);
    bool clean = true;
    for (std::size_t i = 0; i + 1 < xy.size() && clean; ++i)
        clean = !linkDead(xy[i], xy[i + 1]);
    if (clean) {
        out = std::move(xy);
        return out;
    }

    // Deterministic BFS over the intact links: fixed expansion
    // order (east, west, south, north), first-found shortest path.
    const int num_pes = geom_.numPes();
    std::vector<PeId> parent(static_cast<std::size_t>(num_pes),
                             invalidPe);
    std::vector<std::uint8_t> seen(
        static_cast<std::size_t>(num_pes), 0);
    std::vector<PeId> queue;
    queue.reserve(static_cast<std::size_t>(num_pes));
    queue.push_back(src);
    seen[static_cast<std::size_t>(src)] = 1;
    const int cols = geom_.cols;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        PeId at = queue[head];
        if (at == dst)
            break;
        int r = at / cols, c = at % cols;
        PeId peers[4];
        int n = 0;
        if (c + 1 < cols)
            peers[n++] = at + 1;
        if (c > 0)
            peers[n++] = at - 1;
        if (r + 1 < geom_.rows)
            peers[n++] = at + cols;
        if (r > 0)
            peers[n++] = at - cols;
        for (int k = 0; k < n; ++k) {
            PeId next = peers[k];
            if (seen[static_cast<std::size_t>(next)] ||
                linkDead(at, next))
                continue;
            seen[static_cast<std::size_t>(next)] = 1;
            parent[static_cast<std::size_t>(next)] = at;
            queue.push_back(next);
        }
    }
    if (!seen[static_cast<std::size_t>(dst)])
        return out; // disconnected: empty path.
    for (PeId at = dst; at != src;
         at = parent[static_cast<std::size_t>(at)])
        out.push_back(at);
    out.push_back(src);
    std::reverse(out.begin(), out.end());
    return out;
}

Cycles
MeshRouter::latency(PeId src, PeId dst)
{
    const std::vector<PeId> &p = path(src, dst);
    if (p.empty())
        return 0;
    return std::max<Cycles>(
        1, static_cast<Cycles>(p.size() - 1) * geom_.hopLatency);
}

int
MeshRouter::hops(PeId src, PeId dst)
{
    const std::vector<PeId> &p = path(src, dst);
    return p.empty() ? -1 : static_cast<int>(p.size()) - 1;
}

// ------------------------------------------------------------------
// DataMesh
// ------------------------------------------------------------------

DataMesh::DataMesh(int rows, int cols, Cycles hop_latency)
    : geom_(rows, cols, hop_latency),
      stats_("datamesh"),
      flight_(static_cast<Cycles>(rows + cols) * hop_latency + 2),
      linkLoads_(static_cast<std::size_t>(geom_.numLinks()), 0),
      statPackets_(stats_.stat("packets")),
      statHopTraversals_(stats_.stat("hop_traversals")),
      statMaxLinkLoad_(stats_.stat("max_link_load"))
{
    MARIONETTE_ASSERT(rows > 0 && cols > 0,
                      "mesh dimensions must be positive");
    MARIONETTE_ASSERT(hop_latency >= 1, "hop latency must be >= 1");
}

void
DataMesh::setDeadLinks(const std::vector<DeadLink> &dead_links)
{
    router_ = MeshRouter(geom_, dead_links);
}

void
DataMesh::send(Cycle now, PeId src, PeId dst, Word value,
               int channel)
{
    if (router_.faulty()) {
        // Fault mode: route on the shared MeshRouter's detours —
        // the exact paths and latencies the compiler's route pass
        // planned with.  Words whose endpoints the dead links
        // disconnect are dropped (and counted): the physical
        // router has nowhere to forward them, and the machine's
        // watchdog turns the loss into a structured deadlock error.
        const std::vector<PeId> &path = router_.path(src, dst);
        if (path.empty()) {
            ++dropped_;
            lastDropSrc_ = src;
            lastDropDst_ = dst;
            stats_.stat("dropped_words").inc();
            return;
        }
        MeshPacket pkt;
        pkt.src = src;
        pkt.dst = dst;
        pkt.value = value;
        pkt.channel = channel;
        pkt.arrival = now + router_.latency(src, dst);
        flight_.schedule(pkt.arrival, pkt);
        statPackets_.inc();
        statHopTraversals_.inc(
            static_cast<std::uint64_t>(path.size() - 1));
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            std::uint64_t &load =
                linkLoads_[static_cast<std::size_t>(
                    geom_.linkIndex(path[i], path[i + 1]))];
            ++load;
            if (load > statMaxLinkLoad_.value())
                statMaxLinkLoad_.set(load);
        }
        return;
    }

    MeshPacket pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.value = value;
    pkt.channel = channel;
    pkt.arrival = now + latency(src, dst);
    flight_.schedule(pkt.arrival, pkt);
    statPackets_.inc();
    statHopTraversals_.inc(static_cast<std::uint64_t>(hops(src, dst)));
    // Charge every directed link of the XY route (congestion
    // profile) by stepping the coordinates in place — same walk
    // as MeshGeometry::xyPath, without materializing the path
    // (send() is on the simulator's hot path).
    const int cols = geom_.cols;
    int r = src / cols, c = src % cols;
    int dr = dst / cols, dc = dst % cols;
    PeId at = src;
    auto charge = [&](PeId next) {
        std::uint64_t &load = linkLoads_[static_cast<std::size_t>(
            geom_.linkIndex(at, next))];
        ++load;
        if (load > statMaxLinkLoad_.value())
            statMaxLinkLoad_.set(load);
        at = next;
    };
    while (c != dc) {
        c += c < dc ? 1 : -1;
        charge(static_cast<PeId>(r * cols + c));
    }
    while (r != dr) {
        r += r < dr ? 1 : -1;
        charge(static_cast<PeId>(r * cols + c));
    }
}

void
DataMesh::multicast(Cycle now, PeId src,
                    const std::vector<std::pair<PeId, int>> &dests,
                    Word value)
{
    if (dests.size() == 1) {
        // Degenerate multicast: the unicast fast path is
        // bit-identical (same packet, same charges).
        send(now, src, dests.front().first, value,
             dests.front().second);
        return;
    }

    // Union of directed link indices over every destination's
    // route; small sorted vector (fanout is a handful of replicas).
    std::vector<int> tree_links;
    for (const auto &[dst, channel] : dests) {
        std::vector<PeId> xy;
        const std::vector<PeId> *path;
        if (router_.faulty()) {
            path = &router_.path(src, dst);
            if (path->empty()) {
                ++dropped_;
                lastDropSrc_ = src;
                lastDropDst_ = dst;
                stats_.stat("dropped_words").inc();
                continue;
            }
        } else {
            xy = geom_.xyPath(src, dst);
            path = &xy;
        }
        MeshPacket pkt;
        pkt.src = src;
        pkt.dst = dst;
        pkt.value = value;
        pkt.channel = channel;
        pkt.arrival = now + (router_.faulty()
                                 ? router_.latency(src, dst)
                                 : latency(src, dst));
        flight_.schedule(pkt.arrival, pkt);
        statPackets_.inc();
        for (std::size_t i = 0; i + 1 < path->size(); ++i)
            tree_links.push_back(
                geom_.linkIndex((*path)[i], (*path)[i + 1]));
    }
    std::sort(tree_links.begin(), tree_links.end());
    tree_links.erase(
        std::unique(tree_links.begin(), tree_links.end()),
        tree_links.end());
    statHopTraversals_.inc(
        static_cast<std::uint64_t>(tree_links.size()));
    for (int link : tree_links) {
        std::uint64_t &load =
            linkLoads_[static_cast<std::size_t>(link)];
        ++load;
        if (load > statMaxLinkLoad_.value())
            statMaxLinkLoad_.set(load);
    }
}

void
DataMesh::clearLinkLoads()
{
    std::fill(linkLoads_.begin(), linkLoads_.end(), 0);
    statMaxLinkLoad_.set(0);
}

DataMesh::State
DataMesh::saveState() const
{
    State state;
    state.flightDrained = flight_.drained();
    state.flight = flight_.snapshotEvents();
    state.linkLoads = linkLoads_;
    state.dropped = dropped_;
    state.lastDropSrc = lastDropSrc_;
    state.lastDropDst = lastDropDst_;
    state.stats = stats_.captureState();
    return state;
}

void
DataMesh::restoreState(const State &state)
{
    flight_.restoreEvents(state.flightDrained, state.flight);
    MARIONETTE_ASSERT(state.linkLoads.size() == linkLoads_.size(),
                      "snapshot mesh geometry mismatch");
    linkLoads_ = state.linkLoads;
    dropped_ = state.dropped;
    lastDropSrc_ = state.lastDropSrc;
    lastDropDst_ = state.lastDropDst;
    stats_.restoreState(state.stats);
}

void
DataMesh::ffVisit(FfVisitor &v, Cycle now)
{
    ffCtl(v, dropped_);
    ffCtl(v, static_cast<std::uint32_t>(lastDropSrc_));
    ffCtl(v, static_cast<std::uint32_t>(lastDropDst_));
    ffCtl(v, flight_.size());
    flight_.forEachEvent([&v, now](Cycle when, MeshPacket &pkt) {
        ffCtl(v, when - now);
        ffCtl(v, pkt.arrival - now);
        FfHash route;
        route.mix(static_cast<std::uint32_t>(pkt.src));
        route.mix(static_cast<std::uint32_t>(pkt.dst));
        route.mix(static_cast<std::uint32_t>(pkt.channel));
        ffCtl(v, route.value());
        ffWord(v, pkt.value);
    });
    for (std::uint64_t &load : linkLoads_)
        ffU64(v, load);
    stats_.ffVisit(v, {"max_link_load"});
}

std::vector<MeshPacket>
DataMesh::deliver(Cycle now, PeId dst)
{
    std::vector<MeshPacket> out =
        flight_.extractIf([&](const MeshPacket &pkt) {
            return pkt.dst == dst && pkt.arrival <= now;
        });
    std::sort(out.begin(), out.end(),
              [](const MeshPacket &a, const MeshPacket &b) {
                  return a.arrival < b.arrival;
              });
    return out;
}

} // namespace marionette
