#include "net/mesh.h"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.h"

namespace marionette
{

// ------------------------------------------------------------------
// MeshGeometry
// ------------------------------------------------------------------

int
MeshGeometry::hops(PeId src, PeId dst) const
{
    MARIONETTE_ASSERT(src >= 0 && src < rows * cols,
                      "mesh source %d out of range", src);
    MARIONETTE_ASSERT(dst >= 0 && dst < rows * cols,
                      "mesh destination %d out of range", dst);
    int sr = src / cols, sc = src % cols;
    int dr = dst / cols, dc = dst % cols;
    return std::abs(sr - dr) + std::abs(sc - dc);
}

Cycles
MeshGeometry::latency(PeId src, PeId dst) const
{
    int h = hops(src, dst);
    return std::max<Cycles>(1,
                            static_cast<Cycles>(h) * hopLatency);
}

Cycles
MeshGeometry::maxLatency() const
{
    return static_cast<Cycles>(rows - 1 + cols - 1) * hopLatency;
}

std::vector<PeId>
MeshGeometry::xyPath(PeId src, PeId dst) const
{
    MARIONETTE_ASSERT(src >= 0 && src < rows * cols,
                      "mesh source %d out of range", src);
    MARIONETTE_ASSERT(dst >= 0 && dst < rows * cols,
                      "mesh destination %d out of range", dst);
    std::vector<PeId> path;
    int r = src / cols, c = src % cols;
    int dr = dst / cols, dc = dst % cols;
    path.push_back(src);
    // Dimension order: traverse the row (X) first, then the column.
    while (c != dc) {
        c += c < dc ? 1 : -1;
        path.push_back(static_cast<PeId>(r * cols + c));
    }
    while (r != dr) {
        r += r < dr ? 1 : -1;
        path.push_back(static_cast<PeId>(r * cols + c));
    }
    return path;
}

int
MeshGeometry::numLinks() const
{
    // Directed horizontal + vertical links.
    return 2 * (rows * (cols - 1) + cols * (rows - 1));
}

int
MeshGeometry::linkIndex(PeId from, PeId to) const
{
    MARIONETTE_ASSERT(hops(from, to) == 1,
                      "link %d -> %d is not a mesh edge", from, to);
    int fr = from / cols, fc = from % cols;
    int tc = to % cols;
    // Layout: [east | west | south | north] link blocks.
    const int h = rows * (cols - 1);
    const int v = cols * (rows - 1);
    if (fr == to / cols) {
        // Horizontal: (row, min col) identifies the edge.
        int edge = fr * (cols - 1) + std::min(fc, tc);
        return tc > fc ? edge : h + edge;
    }
    // Vertical: (min row, col) identifies the edge.
    int edge = std::min(fr, to / cols) * cols + fc;
    return to > from ? 2 * h + edge : 2 * h + v + edge;
}

// ------------------------------------------------------------------
// DataMesh
// ------------------------------------------------------------------

DataMesh::DataMesh(int rows, int cols, Cycles hop_latency)
    : geom_(rows, cols, hop_latency),
      stats_("datamesh"),
      flight_(static_cast<Cycles>(rows + cols) * hop_latency + 2),
      linkLoads_(static_cast<std::size_t>(geom_.numLinks()), 0),
      statPackets_(stats_.stat("packets")),
      statHopTraversals_(stats_.stat("hop_traversals")),
      statMaxLinkLoad_(stats_.stat("max_link_load"))
{
    MARIONETTE_ASSERT(rows > 0 && cols > 0,
                      "mesh dimensions must be positive");
    MARIONETTE_ASSERT(hop_latency >= 1, "hop latency must be >= 1");
}

void
DataMesh::send(Cycle now, PeId src, PeId dst, Word value,
               int channel)
{
    MeshPacket pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.value = value;
    pkt.channel = channel;
    pkt.arrival = now + latency(src, dst);
    flight_.schedule(pkt.arrival, pkt);
    statPackets_.inc();
    statHopTraversals_.inc(static_cast<std::uint64_t>(hops(src, dst)));
    // Charge every directed link of the XY route (congestion
    // profile) by stepping the coordinates in place — same walk
    // as MeshGeometry::xyPath, without materializing the path
    // (send() is on the simulator's hot path).
    const int cols = geom_.cols;
    int r = src / cols, c = src % cols;
    int dr = dst / cols, dc = dst % cols;
    PeId at = src;
    auto charge = [&](PeId next) {
        std::uint64_t &load = linkLoads_[static_cast<std::size_t>(
            geom_.linkIndex(at, next))];
        ++load;
        if (load > statMaxLinkLoad_.value())
            statMaxLinkLoad_.set(load);
        at = next;
    };
    while (c != dc) {
        c += c < dc ? 1 : -1;
        charge(static_cast<PeId>(r * cols + c));
    }
    while (r != dr) {
        r += r < dr ? 1 : -1;
        charge(static_cast<PeId>(r * cols + c));
    }
}

void
DataMesh::clearLinkLoads()
{
    std::fill(linkLoads_.begin(), linkLoads_.end(), 0);
    statMaxLinkLoad_.set(0);
}

std::vector<MeshPacket>
DataMesh::deliver(Cycle now, PeId dst)
{
    std::vector<MeshPacket> out =
        flight_.extractIf([&](const MeshPacket &pkt) {
            return pkt.dst == dst && pkt.arrival <= now;
        });
    std::sort(out.begin(), out.end(),
              [](const MeshPacket &a, const MeshPacket &b) {
                  return a.arrival < b.arrival;
              });
    return out;
}

} // namespace marionette
