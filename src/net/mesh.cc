#include "net/mesh.h"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.h"

namespace marionette
{

DataMesh::DataMesh(int rows, int cols, Cycles hop_latency)
    : rows_(rows),
      cols_(cols),
      hopLatency_(hop_latency),
      stats_("datamesh"),
      flight_(static_cast<Cycles>(rows + cols) * hop_latency + 2),
      statPackets_(stats_.stat("packets")),
      statHopTraversals_(stats_.stat("hop_traversals"))
{
    MARIONETTE_ASSERT(rows > 0 && cols > 0,
                      "mesh dimensions must be positive");
    MARIONETTE_ASSERT(hop_latency >= 1, "hop latency must be >= 1");
}

int
DataMesh::hops(PeId src, PeId dst) const
{
    MARIONETTE_ASSERT(src >= 0 && src < rows_ * cols_,
                      "mesh source %d out of range", src);
    MARIONETTE_ASSERT(dst >= 0 && dst < rows_ * cols_,
                      "mesh destination %d out of range", dst);
    int sr = src / cols_, sc = src % cols_;
    int dr = dst / cols_, dc = dst % cols_;
    return std::abs(sr - dr) + std::abs(sc - dc);
}

Cycles
DataMesh::latency(PeId src, PeId dst) const
{
    int h = hops(src, dst);
    return std::max<Cycles>(1,
                            static_cast<Cycles>(h) * hopLatency_);
}

Cycles
DataMesh::maxLatency() const
{
    return static_cast<Cycles>(rows_ - 1 + cols_ - 1) * hopLatency_;
}

void
DataMesh::send(Cycle now, PeId src, PeId dst, Word value,
               int channel)
{
    MeshPacket pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.value = value;
    pkt.channel = channel;
    pkt.arrival = now + latency(src, dst);
    flight_.schedule(pkt.arrival, pkt);
    statPackets_.inc();
    statHopTraversals_.inc(static_cast<std::uint64_t>(hops(src, dst)));
}

std::vector<MeshPacket>
DataMesh::deliver(Cycle now, PeId dst)
{
    std::vector<MeshPacket> out =
        flight_.extractIf([&](const MeshPacket &pkt) {
            return pkt.dst == dst && pkt.arrival <= now;
        });
    std::sort(out.begin(), out.end(),
              [](const MeshPacket &a, const MeshPacket &b) {
                  return a.arrival < b.arrival;
              });
    return out;
}

} // namespace marionette
