#include "net/control_network.h"

#include <algorithm>
#include <set>

#include "sim/logging.h"

namespace marionette
{

namespace
{

int
nextPowerOfTwo(int v)
{
    int p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

ControlNetwork::ControlNetwork(int num_pes, int num_extra)
    : numPes_(num_pes),
      numExtra_(num_extra),
      // Fig. 6c sizing: a 4x expansion over the PE ports (16 PEs ->
      // 64-wide core), widened further only if the FIFO/controller
      // ports would not fit.
      width_(nextPowerOfTwo(std::max(4 * num_pes,
                                     num_pes + num_extra))),
      strideIn_(width_ / (num_pes + num_extra)),
      strideOut_(width_ / (num_pes + num_extra)),
      csIn_(width_),
      benes_(width_),
      csOut_(width_),
      stats_("ctrlnet"),
      statConfigurations_(stats_.stat("configurations")),
      statTransfers_(stats_.stat("transfers")),
      statWordsDelivered_(stats_.stat("words_delivered"))
{
    MARIONETTE_ASSERT(num_pes > 0, "control network needs PE ports");
    MARIONETTE_ASSERT(num_extra >= 0, "negative extra ports");
}

bool
ControlNetwork::configure(const std::vector<ControlRoute> &routes)
{
    // --- Validate: ports in range, destination sets disjoint. ---
    std::set<int> seen_dests;
    std::set<int> seen_srcs;
    for (const ControlRoute &r : routes) {
        if (r.srcPort < 0 || r.srcPort >= numPorts())
            MARIONETTE_FATAL("control route source port %d out of "
                             "range", r.srcPort);
        if (!seen_srcs.insert(r.srcPort).second)
            MARIONETTE_FATAL("duplicate control route from port %d",
                             r.srcPort);
        if (r.destPorts.empty())
            MARIONETTE_FATAL("control route from port %d has no "
                             "destinations", r.srcPort);
        for (int d : r.destPorts) {
            if (d < 0 || d >= numPorts())
                MARIONETTE_FATAL("control route dest port %d out of "
                                 "range", d);
            if (!seen_dests.insert(d).second)
                MARIONETTE_FATAL("output port %d listens to two "
                                 "sources", d);
        }
    }

    // --- Split each route's destinations into consecutive runs. ---
    struct Run
    {
        int routeIdx;
        int firstPort;
        int lastPort;
    };
    std::vector<std::vector<Run>> runs_per_route(routes.size());
    std::vector<Run> all_runs;
    for (std::size_t k = 0; k < routes.size(); ++k) {
        std::vector<int> dests = routes[k].destPorts;
        std::sort(dests.begin(), dests.end());
        for (std::size_t i = 0; i < dests.size();) {
            std::size_t j = i;
            // Merge only PE ports into runs; the second CS spreads
            // across the PE range of the output side.
            while (j + 1 < dests.size() &&
                   dests[j + 1] == dests[j] + 1 &&
                   dests[j + 1] < numPes_)
                ++j;
            Run run{static_cast<int>(k), dests[i], dests[j]};
            runs_per_route[k].push_back(run);
            all_runs.push_back(run);
            i = j + 1;
        }
    }

    // --- First CS: replicate each source into one copy per run. ---
    // Corridor allocation in ascending source-position order; spans
    // [srcPos, corridorEnd] must stay disjoint (CS contract).
    std::vector<std::size_t> order(routes.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return routes[a].srcPort < routes[b].srcPort;
              });

    std::vector<CsSpread> in_spreads;
    std::vector<int> corridor_start(routes.size(), -1);
    int prev_span_end = -1;
    for (std::size_t k : order) {
        int src_pos = inPosition(routes[k].srcPort);
        int n_copies =
            static_cast<int>(runs_per_route[k].size());
        if (src_pos <= prev_span_end)
            return false; // corridor would overlap the previous span
        int start = std::max(src_pos, prev_span_end + 1);
        int end = start + n_copies - 1;
        if (end >= width_)
            return false; // exceeds network capacity
        corridor_start[k] = start;
        prev_span_end = end;
        in_spreads.push_back(CsSpread{src_pos, start, end});
    }

    // --- Benes: copy i of route k -> start position of its run. ---
    std::vector<int> perm(static_cast<std::size_t>(width_), -1);
    for (std::size_t k = 0; k < routes.size(); ++k) {
        for (std::size_t i = 0; i < runs_per_route[k].size(); ++i) {
            int mid = corridor_start[k] + static_cast<int>(i);
            int out_pos =
                outPosition(runs_per_route[k][i].firstPort);
            perm[static_cast<std::size_t>(mid)] = out_pos;
        }
    }

    // --- Second CS: spread every run across its PE positions. ---
    std::vector<CsSpread> out_spreads;
    for (const Run &run : all_runs) {
        int lo = outPosition(run.firstPort);
        int hi = outPosition(run.lastPort);
        out_spreads.push_back(CsSpread{lo, lo, hi});
    }
    if (!CsNetwork::routable(in_spreads, width_) ||
        !CsNetwork::routable(out_spreads, width_))
        return false;

    csInRouting_ = csIn_.route(in_spreads);
    benesRouting_ = benes_.route(perm);
    csOutRouting_ = csOut_.route(out_spreads);
    routes_ = routes;
    routeOfPort_.assign(static_cast<std::size_t>(numPorts()), -1);
    for (std::size_t k = 0; k < routes.size(); ++k)
        routeOfPort_[static_cast<std::size_t>(routes[k].srcPort)] =
            static_cast<int>(k);
    configured_ = true;
    statConfigurations_.inc();
    return true;
}

std::vector<ControlDelivery>
ControlNetwork::transfer(
    const std::vector<std::pair<int, Word>> &sends)
{
    MARIONETTE_ASSERT(configured_,
                      "transfer on unconfigured control network");
    if (sends.empty())
        return {};

    std::vector<Word> lane(static_cast<std::size_t>(width_), 0);
    for (const auto &[port, value] : sends) {
        MARIONETTE_ASSERT(port >= 0 && port < numPorts(),
                          "send from bad port %d", port);
        MARIONETTE_ASSERT(
            routeOfPort_[static_cast<std::size_t>(port)] >= 0,
            "send from port %d without a configured route", port);
        lane[static_cast<std::size_t>(inPosition(port))] = value;
    }

    // Real datapath traversal: CS -> Benes -> CS.
    lane = csIn_.apply(csInRouting_, lane);
    lane = benes_.apply(benesRouting_, lane);
    lane = csOut_.apply(csOutRouting_, lane);

    std::vector<ControlDelivery> out;
    for (const auto &[port, value] : sends) {
        int k = routeOfPort_[static_cast<std::size_t>(port)];
        for (int dest :
             routes_[static_cast<std::size_t>(k)].destPorts) {
            Word delivered =
                lane[static_cast<std::size_t>(outPosition(dest))];
            MARIONETTE_ASSERT(delivered == value,
                              "control network corrupted a word "
                              "(port %d -> %d)", port, dest);
            out.push_back(ControlDelivery{dest, delivered});
        }
        statTransfers_.inc();
    }
    statWordsDelivered_.inc(out.size());
    return out;
}

std::vector<int>
ControlNetwork::destinationsOf(int src_port) const
{
    if (!configured_ || src_port < 0 || src_port >= numPorts())
        return {};
    int k = routeOfPort_[static_cast<std::size_t>(src_port)];
    if (k < 0)
        return {};
    return routes_[static_cast<std::size_t>(k)].destPorts;
}

} // namespace marionette
