#include "net/delay_model.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "sim/logging.h"

namespace marionette
{

namespace
{

/** 28 nm standard-cell constants (typical corner). */
constexpr double switchLogicNs = 0.085; ///< 2:1 mux + config gate.
constexpr double wireNsPerSpanLog = 0.022; ///< wire per log2(span).
constexpr double setupClkQNs = 0.110;   ///< register overhead.

int
log2ceil(int v)
{
    int k = 0;
    while ((1 << k) < v)
        ++k;
    return k;
}

} // namespace

int
controlNetworkStages(int num_pes)
{
    // Width = 4x the PE port count, as in the Fig. 6c instance
    // (16 PE ports -> 64-wide core).
    int width = 1;
    while (width < 4 * num_pes)
        width <<= 1;
    int k = log2ceil(width);
    // Two CS stages of log2(width) plus a (2*log2(width) - 1)-stage
    // Benes core.
    return 2 * k + (2 * k - 1);
}

NetworkTiming
timeControlNetwork(int num_pes, double freq_ghz)
{
    MARIONETTE_ASSERT(num_pes > 0 && freq_ghz > 0,
                      "bad timing query");
    NetworkTiming t;
    t.numPes = num_pes;
    t.freqGhz = freq_ghz;
    t.stages = controlNetworkStages(num_pes);

    // Per-stage delay: logic plus span-dependent wire.  Average span
    // log across a butterfly of width w is ~log2(w)/2.
    int width = 1;
    while (width < 4 * num_pes)
        width <<= 1;
    double avg_span_log = log2ceil(width) / 2.0;
    double per_stage =
        switchLogicNs + wireNsPerSpanLog * avg_span_log;
    t.pathNs = t.stages * per_stage;

    double cycle_ns = 1.0 / freq_ghz;
    double budget = cycle_ns - setupClkQNs;
    if (budget <= per_stage) {
        // Even one stage per cycle misses timing: report the
        // single-stage bound.
        t.criticalPathNs = per_stage + setupClkQNs;
        t.latencyCycles = t.stages;
        t.meetsTiming = t.criticalPathNs <= cycle_ns;
        return t;
    }
    int stages_per_cycle =
        static_cast<int>(std::floor(budget / per_stage));
    if (stages_per_cycle < 1)
        stages_per_cycle = 1;
    t.latencyCycles = (t.stages + stages_per_cycle - 1) /
                      stages_per_cycle;
    t.criticalPathNs =
        stages_per_cycle * per_stage + setupClkQNs;
    t.meetsTiming = t.criticalPathNs <= cycle_ns;
    return t;
}

std::vector<NetworkTiming>
delaySweep()
{
    std::vector<NetworkTiming> out;
    const int sizes[] = {4, 16, 64, 256};
    const double freqs[] = {0.5, 0.8, 1.0, 1.25, 2.0};
    for (int pes : sizes)
        for (double f : freqs)
            out.push_back(timeControlNetwork(pes, f));
    return out;
}

int
controlNetworkLatencyCycles(int num_pes, double freq_ghz)
{
    return timeControlNetwork(num_pes, freq_ghz).latencyCycles;
}

std::string
toString(const std::vector<NetworkTiming> &sweep)
{
    std::ostringstream out;
    out << std::right << std::setw(6) << "PEs" << std::setw(8)
        << "Stages" << std::setw(10) << "Freq" << std::setw(12)
        << "Path(ns)" << std::setw(12) << "Crit(ns)" << std::setw(10)
        << "Cycles" << std::setw(8) << "Meets" << '\n';
    for (const NetworkTiming &t : sweep) {
        out << std::setw(6) << t.numPes << std::setw(8) << t.stages
            << std::fixed << std::setprecision(2) << std::setw(9)
            << t.freqGhz << "G" << std::setw(12) << t.pathNs
            << std::setw(12) << t.criticalPathNs << std::setw(10)
            << t.latencyCycles << std::setw(8)
            << (t.meetsTiming ? "yes" : "no") << '\n';
    }
    return out.str();
}

} // namespace marionette
