/**
 * @file
 * Benes rearrangeable non-blocking network (paper Sec. 4.1, Fig. 6a).
 *
 * A Benes network over n = 2^k terminals has 2k-1 stages of n/2
 * two-by-two crossbar switches and can realize *every* permutation
 * of inputs to outputs without internal blocking (Benes 1962).  The
 * Marionette control plane uses it as the permutation core of the
 * CS-Benes control network because it needs far fewer switches than
 * a crossbar (n log n vs n^2).
 *
 * This implementation provides the classic recursive looping
 * (Waksman) routing algorithm and a functional apply() so property
 * tests can verify conflict-freedom for arbitrary permutations.
 */

#ifndef MARIONETTE_NET_BENES_H
#define MARIONETTE_NET_BENES_H

#include <vector>

#include "sim/types.h"

namespace marionette
{

/**
 * Switch settings for one routed configuration of a Benes network.
 * settings[stage][row] == true means the 2x2 switch at that position
 * crosses its inputs.
 */
struct BenesRouting
{
    std::vector<std::vector<bool>> settings;
};

/** A Benes network over a power-of-two number of terminals. */
class BenesNetwork
{
  public:
    /** @param n terminal count; must be a power of two >= 2. */
    explicit BenesNetwork(int n);

    int numTerminals() const { return n_; }

    /** Number of switch stages: 2*log2(n) - 1. */
    int numStages() const { return stages_; }

    /** Switches per stage: n/2. */
    int switchesPerStage() const { return n_ / 2; }

    /** Total 2x2 switches in the fabric. */
    int totalSwitches() const { return stages_ * (n_ / 2); }

    /**
     * Route a (possibly partial) permutation.
     *
     * @param perm perm[i] is the output terminal for input i, or -1
     *             when input i is unused.  Used outputs must be
     *             distinct.
     * @return switch settings realizing the permutation.
     */
    BenesRouting route(const std::vector<int> &perm) const;

    /**
     * Push values through the switched fabric.
     *
     * @param routing settings produced by route().
     * @param inputs  one value per input terminal.
     * @return the values observed at each output terminal.
     */
    std::vector<Word> apply(const BenesRouting &routing,
                            const std::vector<Word> &inputs) const;

  private:
    void routeRec(const std::vector<int> &perm, int stage_lo,
                  int stage_hi, int row_base,
                  BenesRouting &routing) const;

    std::vector<Word> applyRec(const BenesRouting &routing,
                               const std::vector<Word> &inputs,
                               int stage_lo, int stage_hi,
                               int row_base) const;

    int n_;
    int stages_;
};

} // namespace marionette

#endif // MARIONETTE_NET_BENES_H
