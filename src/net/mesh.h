/**
 * @file
 * Data-plane mesh network.
 *
 * The data flow plane interconnects PEs with a 2-D mesh using
 * dimension-ordered (XY) routing (paper Fig. 4d: "Data Mesh
 * Network", 6-cycle corner-to-corner latency on the 4x4 prototype).
 * The functional machine uses it for producer/consumer transfers
 * between non-adjacent PEs; the performance models query hop
 * latencies from it.
 *
 * The pure geometry — hop counts, end-to-end latencies and the
 * dimension-ordered paths themselves — lives in MeshGeometry, a
 * plain value type the compiler backend shares with the machine:
 * the placement pass scores candidate mappings with the same
 * distance function the mesh will charge at run time, and the
 * route pass materializes the exact XY link sequence every data
 * edge traverses.
 *
 * In-flight words live in a calendar queue bucketed by arrival
 * cycle, so the machine drains exactly the packets landing this
 * cycle instead of scanning everything pending.  Each send also
 * charges the directed links of its XY path, giving the per-link
 * congestion counters the evaluation reports (max/total link load).
 */

#ifndef MARIONETTE_NET_MESH_H
#define MARIONETTE_NET_MESH_H

#include <map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/ffstate.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace marionette
{

/**
 * Pure 2-D mesh geometry with dimension-ordered (XY) routing.
 *
 * Shared between the cycle-accurate DataMesh and the compiler
 * backend, so placement cost and routed-edge latencies are by
 * construction the latencies the machine delivers.
 */
struct MeshGeometry
{
    int rows = 0;
    int cols = 0;
    Cycles hopLatency = 1;

    MeshGeometry() = default;
    MeshGeometry(int rows_in, int cols_in, Cycles hop_latency)
        : rows(rows_in), cols(cols_in), hopLatency(hop_latency)
    {}

    int numPes() const { return rows * cols; }

    /** Manhattan hop count between two PEs. */
    int hops(PeId src, PeId dst) const;

    /** End-to-end latency: one cycle minimum, hopLatency per hop. */
    Cycles latency(PeId src, PeId dst) const;

    /** Worst-case (corner-to-corner) latency of this mesh. */
    Cycles maxLatency() const;

    /**
     * The dimension-ordered route from @p src to @p dst: every PE
     * the packet passes through, endpoints included (column-first,
     * then row — "XY").  Size is hops(src, dst) + 1.
     */
    std::vector<PeId> xyPath(PeId src, PeId dst) const;

    /** Directed mesh links (each adjacent PE pair, both ways). */
    int numLinks() const;

    /**
     * Dense index of the directed link @p from -> @p to; the two
     * PEs must be mesh-adjacent.  Used for per-link load counters.
     */
    int linkIndex(PeId from, PeId to) const;
};

/**
 * Fault-aware routing over a MeshGeometry.
 *
 * The single source of truth for "which path does a word take when
 * links are down", shared by the cycle-accurate DataMesh and the
 * compiler's route pass so a routed edge's latency is still, by
 * construction, what the machine charges.  Routing policy:
 *
 *  - with no dead links the router is pass-through: XY paths and
 *    latencies, bit-identical to the fault-free mesh;
 *  - a source-destination pair whose XY path avoids every dead
 *    link keeps its XY route (healthy traffic is undisturbed);
 *  - otherwise the shortest detour is found by deterministic BFS
 *    (fixed east/west/south/north expansion order) over the intact
 *    links; latency is hopLatency per hop of the detour;
 *  - when the dead links disconnect the pair there is no route:
 *    path() is empty and latency() returns 0 (a healthy latency is
 *    always >= 1).  The machine drops such words and the watchdog
 *    reports them; the compiler rejects the mapping.
 *
 * Paths are memoized per (src, dst); not thread-safe — each machine
 * and each compilation owns its router.
 */
class MeshRouter
{
  public:
    MeshRouter() = default;
    MeshRouter(const MeshGeometry &geom,
               const std::vector<DeadLink> &dead_links);

    /** True when any link is dead (the non-pass-through mode). */
    bool faulty() const { return faulty_; }

    /** Is the directed link @p from -> @p to down?  (Links die in
     *  both directions.)  @p from and @p to must be adjacent. */
    bool linkDead(PeId from, PeId to) const;

    /** The route from @p src to @p dst avoiding dead links; empty
     *  when the pair is disconnected.  Self-sends route as the
     *  trivial [src] path.  Only valid while the router lives. */
    const std::vector<PeId> &path(PeId src, PeId dst);

    /** End-to-end latency of path(); 0 when disconnected. */
    Cycles latency(PeId src, PeId dst);

    /** Hop count of path(); -1 when disconnected. */
    int hops(PeId src, PeId dst);

    const MeshGeometry &geometry() const { return geom_; }

  private:
    MeshGeometry geom_;
    bool faulty_ = false;
    /** Dead flag per directed link (geom_.linkIndex layout). */
    std::vector<std::uint8_t> linkDead_;
    /** Memoized paths keyed by src * numPes + dst. */
    std::map<int, std::vector<PeId>> paths_;
};

/** A word in flight on the mesh. */
struct MeshPacket
{
    PeId src = invalidPe;
    PeId dst = invalidPe;
    Word value = 0;
    /** Cycle at which the packet reaches the destination. */
    Cycle arrival = 0;
    /** Logical channel (output port index at the consumer). */
    int channel = 0;
};

/** 2-D mesh with XY routing and per-hop latency. */
class DataMesh
{
  public:
    /**
     * @param rows array rows.
     * @param cols array columns.
     * @param hop_latency cycles per router hop.
     */
    DataMesh(int rows, int cols, Cycles hop_latency);

    int rows() const { return geom_.rows; }
    int cols() const { return geom_.cols; }

    /** The mesh's geometry (shared with the compiler backend). */
    const MeshGeometry &geometry() const { return geom_; }

    /**
     * Apply a dead-link set (kernel-independent hardware state; the
     * machine installs its config's fault plan at construction).
     * With dead links installed, send() detours words around them
     * on the same deterministic routes MeshRouter hands the
     * compiler, and *drops* words whose endpoints the dead links
     * disconnect — see droppedWords().
     */
    void setDeadLinks(const std::vector<DeadLink> &dead_links);

    /** True when a dead-link set is installed. */
    bool faulty() const { return router_.faulty(); }

    /** Words dropped because dead links disconnected their
     *  endpoints (never nonzero on a healthy mesh). */
    std::uint64_t droppedWords() const { return dropped_; }

    /** Endpoints of the most recently dropped word (diagnostics);
     *  invalidPe when nothing was dropped. */
    PeId lastDropSrc() const { return lastDropSrc_; }
    PeId lastDropDst() const { return lastDropDst_; }

    /**
     * Fault-aware end-to-end latency: geometry latency on a healthy
     * mesh, detour latency with dead links installed, 0 when the
     * pair is disconnected.  What send() actually charges.
     */
    Cycles routedLatency(PeId src, PeId dst)
    {
        return router_.faulty() ? router_.latency(src, dst)
                                : geom_.latency(src, dst);
    }

    /** Manhattan hop count between two PEs. */
    int hops(PeId src, PeId dst) const
    { return geom_.hops(src, dst); }

    /** End-to-end latency: one cycle minimum, hop_latency per hop. */
    Cycles latency(PeId src, PeId dst) const
    { return geom_.latency(src, dst); }

    /** Worst-case (corner-to-corner) latency of this mesh. */
    Cycles maxLatency() const { return geom_.maxLatency(); }

    /**
     * Inject a word at @p now; it becomes visible to the consumer at
     * now + latency(src, dst).
     */
    void send(Cycle now, PeId src, PeId dst, Word value,
              int channel = 0);

    /**
     * Inject one word fanned out to several destinations as a
     * multicast: each destination receives the word at its own
     * routed latency (identical arrival cycles and ordering to N
     * unicast send()s), but the link-load profile charges every
     * directed link of the *union* of the routes exactly once —
     * the word physically traverses each shared mesh segment a
     * single time and forks at the branch routers.  Destinations
     * whose endpoints dead links disconnect are dropped and counted
     * individually, exactly as send() would.  `packets` counts the
     * delivered destinations; `hop_traversals` counts the union
     * links.  A single-destination multicast is bit-identical to
     * send().
     */
    void multicast(Cycle now, PeId src,
                   const std::vector<std::pair<PeId, int>> &dests,
                   Word value);

    /**
     * Deliver every packet arriving at cycle @p now (all
     * destinations) by calling @p fn(packet), in send order.  The
     * machine's hot path; O(arrivals this cycle).  Per-destination,
     * per-channel packets arrive in send order, which preserves the
     * fabric's FIFO channel ordering.
     */
    template <typename F>
    void
    deliverArrivals(Cycle now, F &&fn)
    {
        flight_.drain(now, std::forward<F>(fn));
    }

    /**
     * Pop every packet that has arrived at @p dst by cycle @p now.
     * Compatibility scan for tests; the machine uses
     * deliverArrivals().
     */
    std::vector<MeshPacket> deliver(Cycle now, PeId dst);

    /** Packets still in flight (for drain/quiesce checks). */
    std::size_t inFlight() const { return flight_.size(); }

    /** Drop all in-flight packets (kernel-boundary reset). */
    void clearInFlight() { flight_.clear(); }

    /** Cumulative traversals of every directed link — like every
     *  other statistic, over the machine's lifetime (sweeps run
     *  one kernel per machine, so per-kernel profiles fall out). */
    const std::vector<std::uint64_t> &linkLoads() const
    { return linkLoads_; }

    /** Reset the per-link counters and their max stat together
     *  (keeps max_link_load == max(linkLoads())). */
    void clearLinkLoads();

    const StatGroup &stats() const { return stats_; }

    /** Zero every mesh statistic, including the per-link loads the
     *  max_link_load stat is derived from (persistent machines:
     *  ServeCore resets stats at request boundaries). */
    void resetStats()
    {
        clearLinkLoads();
        stats_.resetAll(); // last: clearLinkLoads touches the max.
    }

    /** Deep copy of the mesh's run-time state (snapshots). */
    struct State
    {
        Cycle flightDrained = 0;
        std::vector<std::pair<Cycle, MeshPacket>> flight;
        std::vector<std::uint64_t> linkLoads;
        std::uint64_t dropped = 0;
        PeId lastDropSrc = invalidPe;
        PeId lastDropDst = invalidPe;
        StatGroupState stats;
    };

    State saveState() const;
    void restoreState(const State &state);

    /**
     * Fast-forward visit: in-flight packets (now-relative arrivals
     * and routes Control, payloads Values), per-link loads as
     * Values, and the stat group with max_link_load excluded — the
     * running max's argmax link can migrate after the probe, so a
     * jump recomputes it (ffRefreshMaxLinkLoad) instead of
     * extrapolating.
     */
    void ffVisit(FfVisitor &v, Cycle now);

    /** Rebase in-flight arrivals across a clock jump. */
    void ffShift(Cycles delta) { flight_.shift(delta); }

    /** Re-derive max_link_load from the (extrapolated) per-link
     *  loads after a jump.  Loads only grow, so the running max
     *  always equals the current maximum; untouched dumps stay
     *  untouched because a zero max means no traffic ever. */
    void
    ffRefreshMaxLinkLoad()
    {
        std::uint64_t m = 0;
        for (std::uint64_t load : linkLoads_)
            m = load > m ? load : m;
        if (m > 0)
            statMaxLinkLoad_.set(m);
    }

  private:
    MeshGeometry geom_;
    StatGroup stats_;
    CalendarQueue<MeshPacket> flight_;
    /** Traversal count per directed link (XY-routed). */
    std::vector<std::uint64_t> linkLoads_;
    /** Fault-aware router; pass-through until setDeadLinks(). */
    MeshRouter router_;
    std::uint64_t dropped_ = 0;
    PeId lastDropSrc_ = invalidPe;
    PeId lastDropDst_ = invalidPe;
    Stat &statPackets_;
    Stat &statHopTraversals_;
    Stat &statMaxLinkLoad_;
};

} // namespace marionette

#endif // MARIONETTE_NET_MESH_H
