/**
 * @file
 * Data-plane mesh network.
 *
 * The data flow plane interconnects PEs with a 2-D mesh using
 * dimension-ordered (XY) routing (paper Fig. 4d: "Data Mesh
 * Network", 6-cycle corner-to-corner latency on the 4x4 prototype).
 * The functional machine uses it for producer/consumer transfers
 * between non-adjacent PEs; the performance models query hop
 * latencies from it.
 *
 * In-flight words live in a calendar queue bucketed by arrival
 * cycle, so the machine drains exactly the packets landing this
 * cycle instead of scanning everything pending.
 */

#ifndef MARIONETTE_NET_MESH_H
#define MARIONETTE_NET_MESH_H

#include <vector>

#include "sim/event_queue.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace marionette
{

/** A word in flight on the mesh. */
struct MeshPacket
{
    PeId src = invalidPe;
    PeId dst = invalidPe;
    Word value = 0;
    /** Cycle at which the packet reaches the destination. */
    Cycle arrival = 0;
    /** Logical channel (output port index at the consumer). */
    int channel = 0;
};

/** 2-D mesh with XY routing and per-hop latency. */
class DataMesh
{
  public:
    /**
     * @param rows array rows.
     * @param cols array columns.
     * @param hop_latency cycles per router hop.
     */
    DataMesh(int rows, int cols, Cycles hop_latency);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    /** Manhattan hop count between two PEs. */
    int hops(PeId src, PeId dst) const;

    /** End-to-end latency: one cycle minimum, hop_latency per hop. */
    Cycles latency(PeId src, PeId dst) const;

    /** Worst-case (corner-to-corner) latency of this mesh. */
    Cycles maxLatency() const;

    /**
     * Inject a word at @p now; it becomes visible to the consumer at
     * now + latency(src, dst).
     */
    void send(Cycle now, PeId src, PeId dst, Word value,
              int channel = 0);

    /**
     * Deliver every packet arriving at cycle @p now (all
     * destinations) by calling @p fn(packet), in send order.  The
     * machine's hot path; O(arrivals this cycle).  Per-destination,
     * per-channel packets arrive in send order, which preserves the
     * fabric's FIFO channel ordering.
     */
    template <typename F>
    void
    deliverArrivals(Cycle now, F &&fn)
    {
        flight_.drain(now, std::forward<F>(fn));
    }

    /**
     * Pop every packet that has arrived at @p dst by cycle @p now.
     * Compatibility scan for tests; the machine uses
     * deliverArrivals().
     */
    std::vector<MeshPacket> deliver(Cycle now, PeId dst);

    /** Packets still in flight (for drain/quiesce checks). */
    std::size_t inFlight() const { return flight_.size(); }

    /** Drop all in-flight packets (kernel-boundary reset). */
    void clearInFlight() { flight_.clear(); }

    const StatGroup &stats() const { return stats_; }

  private:
    int rows_;
    int cols_;
    Cycles hopLatency_;
    StatGroup stats_;
    CalendarQueue<MeshPacket> flight_;
    Stat &statPackets_;
    Stat &statHopTraversals_;
};

} // namespace marionette

#endif // MARIONETTE_NET_MESH_H
