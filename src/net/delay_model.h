/**
 * @file
 * Control-network timing model (paper Fig. 13).
 *
 * The paper synthesizes the CS-Benes control network at several
 * sizes and clock-frequency targets with Synopsys DC and plots the
 * relationship among network stages, network delay (pipeline
 * cycles) and critical-path delay.  This model substitutes a
 * standard-cell timing estimate: each switching stage contributes a
 * logic delay plus a wire delay that grows with the stage's span
 * (longer butterfly wires at outer stages), and registers are
 * inserted whenever the accumulated path exceeds the cycle time.
 * The observable trends — more stages and higher frequencies cost
 * more latency cycles, with a modest slope — match Fig. 13.
 */

#ifndef MARIONETTE_NET_DELAY_MODEL_H
#define MARIONETTE_NET_DELAY_MODEL_H

#include <string>
#include <vector>

namespace marionette
{

/** Result of timing one network instance at one frequency. */
struct NetworkTiming
{
    /** PEs served by the network. */
    int numPes = 0;
    /** End-to-end switching stages (CS + Benes + CS). */
    int stages = 0;
    /** Target clock frequency in GHz. */
    double freqGhz = 0.0;
    /** Unpipelined end-to-end path in nanoseconds. */
    double pathNs = 0.0;
    /** Longest register-to-register path after pipelining (ns). */
    double criticalPathNs = 0.0;
    /** Latency in cycles after pipelining at this frequency. */
    int latencyCycles = 0;
    /** Whether the target cycle time is met. */
    bool meetsTiming = false;
};

/** Stage count of a CS-Benes network sized for @p num_pes. */
int controlNetworkStages(int num_pes);

/** Time one configuration. */
NetworkTiming timeControlNetwork(int num_pes, double freq_ghz);

/**
 * Pipelined latency (cycles) of the CS-Benes control network sized
 * for @p num_pes at @p freq_ghz — the latency query the compiler
 * backend's route pass uses when it records control-network routes
 * next to the mesh hop paths.
 */
int controlNetworkLatencyCycles(int num_pes, double freq_ghz);

/**
 * The Fig. 13 sweep: array sizes 2x2 .. 16x16 crossed with
 * frequency targets 0.5 .. 2.0 GHz.
 */
std::vector<NetworkTiming> delaySweep();

/** Render the sweep as an aligned table. */
std::string toString(const std::vector<NetworkTiming> &sweep);

} // namespace marionette

#endif // MARIONETTE_NET_DELAY_MODEL_H
