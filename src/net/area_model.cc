#include "net/area_model.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "net/control_network.h"
#include "sim/logging.h"

namespace marionette
{

namespace
{

/**
 * Calibration constants: per-unit 28 nm areas/powers chosen so the
 * paper's reference configuration (4x4 PEs, 12 ordinary + 4
 * nonlinear, 16 KiB scratchpad, 2 KiB instruction memory, 16+32+16
 * port CS-Benes) lands exactly on Table 4.
 */
constexpr double ordinaryPeArea = 0.059 / 12;   // mm^2 per PE
constexpr double ordinaryPePower = 48.99 / 12;  // mW per PE
constexpr double nonlinearPeArea = 0.032 / 4;
constexpr double nonlinearPePower = 22.02 / 4;

// Data mesh: per-router area on the reference 4x4 (16 routers).
constexpr double meshRouterArea = 0.0063 / 16;
constexpr double meshRouterPower = 40.80 / 16;

// Control network: per-switching-element area.  The reference
// CS-Benes over width 64 has a 64x64 Benes (11 stages x 32 = 352
// 2x2 switches) and two 64-wide CS stages (2 x 6 x 64 = 768 2:1
// muxes); a 2x2 switch is modeled as 3x the mux cost (two muxes
// plus state), giving 352*3 + 768 = 1824 mux-equivalents for
// 0.0022 mm^2.
constexpr double muxEquivArea = 0.0022 / 1824;
constexpr double muxEquivPower = 13.89 / 1824;

constexpr double spadAreaPerKib = 0.033 / 16;
constexpr double spadPowerPerKib = 5.07 / 16;

constexpr double memXbarAreaPerPe = 0.003 / 16;
constexpr double memXbarPowerPerPe = 14.24 / 16;

constexpr double fifoAreaEach = 0.001 / 16;
constexpr double fifoPowerEach = 0.56 / 16;

constexpr double controllerAreaBase = 0.013;
constexpr double controllerPowerBase = 6.52;

} // namespace

AreaBreakdown
marionetteAreaBreakdown(const MachineConfig &config)
{
    AreaBreakdown bd;
    auto add = [&bd](const std::string &group,
                     const std::string &component, double area,
                     double power) {
        bd.rows.push_back(AreaRow{group, component, area, power});
        bd.totalAreaMm2 += area;
        bd.totalPowerMw += power;
    };

    int ordinary = config.numPes() - config.nonlinearPes;
    add("PE",
        "PEs (" + std::to_string(ordinary) + " ordinary)",
        ordinary * ordinaryPeArea, ordinary * ordinaryPePower);
    add("PE",
        "PEs (" + std::to_string(config.nonlinearPes) +
            " with nonlinear fitting)",
        config.nonlinearPes * nonlinearPeArea,
        config.nonlinearPes * nonlinearPePower);

    add("Network", "Data Network",
        config.numPes() * meshRouterArea,
        config.numPes() * meshRouterPower);

    // Control network cost from the actual switch counts of a
    // CS-Benes instance sized for this array.
    ControlNetwork net(config.numPes(),
                       config.controlFifoCount / 2 + 8);
    double mux_equiv = net.benesSwitches() * 3.0 + net.csMuxes();
    add("Network", "Control Network", mux_equiv * muxEquivArea,
        mux_equiv * muxEquivPower);

    double spad_kib = config.scratchpadBytes / 1024.0;
    add("Memory",
        "Data Scratchpad (" +
            std::to_string(static_cast<int>(spad_kib)) + "KB)",
        spad_kib * spadAreaPerKib, spad_kib * spadPowerPerKib);
    add("Memory", "Memory Access Interconnect",
        config.numPes() * memXbarAreaPerPe,
        config.numPes() * memXbarPowerPerPe);
    add("Memory", "Control FIFOs",
        config.controlFifoCount * fifoAreaEach,
        config.controlFifoCount * fifoPowerEach);

    double ctrl_scale =
        (config.instrMemBytes / 2048.0 + 1.0) / 2.0;
    add("Control",
        "Controller + Instruction Scratchpad (" +
            std::to_string(config.instrMemBytes / 1024) + "KB)",
        controllerAreaBase * ctrl_scale,
        controllerPowerBase * ctrl_scale);

    return bd;
}

std::string
AreaBreakdown::toString() const
{
    std::ostringstream out;
    out << std::left << std::setw(10) << "Group" << std::setw(44)
        << "Component" << std::right << std::setw(12)
        << "Area(mm^2)" << std::setw(12) << "Power(mW)" << '\n';
    for (const AreaRow &row : rows) {
        out << std::left << std::setw(10) << row.group
            << std::setw(44) << row.component << std::right
            << std::fixed << std::setprecision(4) << std::setw(12)
            << row.areaMm2 << std::setprecision(2) << std::setw(12)
            << row.powerMw << '\n';
    }
    out << std::left << std::setw(54) << "Total" << std::right
        << std::fixed << std::setprecision(4) << std::setw(12)
        << totalAreaMm2 << std::setprecision(2) << std::setw(12)
        << totalPowerMw << '\n';
    return out.str();
}

std::vector<NetworkAreaEntry>
networkAreaComparison(const MachineConfig &config)
{
    // Literature rows as published in Table 6 (normalized to 28 nm,
    // 32-bit datapath, 4x4 PE array by the paper's methodology).
    std::vector<NetworkAreaEntry> table = {
        {"Softbrain", 0.0041, 0.0130, 0.0, 0.0, true},
        {"REVEL", 0.022, 0.028, 0.0, 0.0, true},
        {"DySER", 0.058, 0.052, 0.0, 0.0, true},
        {"Plasticine", 0.161, 0.294, 0.0, 0.0, true},
        {"SPU", 0.050, 0.045, 0.0, 0.0, true},
    };

    // Marionette's row from this model: PE area from the breakdown,
    // network area = data mesh + control network.
    AreaBreakdown bd = marionetteAreaBreakdown(config);
    NetworkAreaEntry us;
    us.architecture = "Marionette";
    for (const AreaRow &row : bd.rows) {
        if (row.group == "PE")
            us.peAreaMm2 += row.areaMm2;
        else if (row.group == "Network")
            us.networkAreaMm2 += row.areaMm2;
        else if (row.component == "Memory Access Interconnect")
            us.networkAreaMm2 += row.areaMm2;
    }
    table.push_back(us);

    for (NetworkAreaEntry &e : table) {
        e.computingFabricMm2 = e.peAreaMm2 + e.networkAreaMm2;
        e.networkRatio = e.networkAreaMm2 / e.computingFabricMm2;
    }
    return table;
}

std::string
toString(const std::vector<NetworkAreaEntry> &table)
{
    std::ostringstream out;
    out << std::left << std::setw(14) << "Architecture" << std::right
        << std::setw(10) << "PE" << std::setw(10) << "Network"
        << std::setw(10) << "Fabric" << std::setw(10) << "Ratio"
        << '\n';
    for (const NetworkAreaEntry &e : table) {
        out << std::left << std::setw(14) << e.architecture
            << std::right << std::fixed << std::setprecision(4)
            << std::setw(10) << e.peAreaMm2 << std::setw(10)
            << e.networkAreaMm2 << std::setw(10)
            << e.computingFabricMm2 << std::setprecision(1)
            << std::setw(9) << e.networkRatio * 100 << "%" << '\n';
    }
    return out.str();
}

} // namespace marionette
