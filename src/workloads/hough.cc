/**
 * @file
 * Hough Transform (HT) — 120 x 180 image (HosNa suite).
 *
 * Line detection: every edge pixel votes across 180 theta bins.
 * The theta loop hangs *under a branch* (only edge pixels enter
 * it), making the branch sub-inner and the nest imperfect —
 * Table 1: sub-inner branch, imperfect nested loops.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kHeight = 120;
constexpr int kWidth = 180;
constexpr int kThetas = 180;
constexpr Word kThreshold = 128;

enum Block : BlockId
{
    bInit = 0,
    bYLoop,      // depth 1
    bXLoop,      // depth 2
    bPixelIf,    // if (img[y][x] > threshold)
    bThetaLoop,  // vote loop (depth 3, under the branch)
    bVote,       // rho = x cos + y sin; acc[theta][rho]++
    bSkip,
    bXLatch,
    bYLatch,
    bDone
};

class HoughWorkload : public Workload
{
  public:
    std::string name() const override { return "HT"; }
    std::string fullName() const override
    { return "Hough Transform"; }
    std::string sizeDesc() const override { return "120 x 180"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("hough");
        BlockId init = b.addBlock("init");
        BlockId yloop = b.addLoopHeader("y_loop");
        BlockId xloop = b.addLoopHeader("x_loop");
        BlockId pif = b.addBranchBlock("pixel_if");
        BlockId theta = b.addLoopHeader("theta_loop");
        BlockId vote = b.addBlock("vote");
        BlockId skip = b.addBlock("skip");
        BlockId xlatch = b.addBlock("x_latch");
        BlockId ylatch = b.addBlock("y_latch");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("y", c);
        }
        for (BlockId hdr : {yloop, xloop, theta}) {
            Dfg &d = b.dfg(hdr);
            dfg_patterns::addCountedLoop(d, 0, 1, "bound");
        }
        {   // load pixel, compare, branch.  The image width is a
            // live-in so the machine data can size the run.
            Dfg &d = b.dfg(pif);
            int y = d.addInput("y");
            int x = d.addInput("x");
            int iw = d.addInput("imgw");
            NodeId idx = d.addNode(Opcode::Mul, Operand::input(y),
                                   Operand::input(iw));
            NodeId idx2 = d.addNode(Opcode::Add, Operand::node(idx),
                                    Operand::input(x));
            NodeId px = d.addNode(Opcode::Load, Operand::node(idx2),
                                  Operand::none(), Operand::none(),
                                  "img");
            NodeId gt = d.addNode(Opcode::CmpGt, Operand::node(px),
                                  Operand::imm(kThreshold));
            d.addNode(Opcode::Branch, Operand::node(gt));
            d.addOutput("edge", gt);
        }
        {   // vote: rho = (x*cos[t] + y*sin[t]) >> 15;
            // acc[t][rho + rho_max]++.
            Dfg &d = b.dfg(vote);
            int x = d.addInput("x");
            int y = d.addInput("y");
            int t = d.addInput("theta");
            int bw = d.addInput("binw");
            int rm = d.addInput("rhomax");
            NodeId ct = d.addNode(Opcode::Load, Operand::input(t),
                                  Operand::none(), Operand::none(),
                                  "cos");
            NodeId st = d.addNode(Opcode::Load, Operand::input(t),
                                  Operand::none(), Operand::none(),
                                  "sin");
            NodeId xc = d.addNode(Opcode::Mul, Operand::input(x),
                                  Operand::node(ct));
            NodeId ys = d.addNode(Opcode::Mac, Operand::input(y),
                                  Operand::node(st),
                                  Operand::node(xc), "rho.q15");
            NodeId rho = d.addNode(Opcode::Sra, Operand::node(ys),
                                   Operand::imm(15));
            NodeId tb = d.addNode(Opcode::Mul, Operand::input(t),
                                  Operand::input(bw));
            NodeId b1 = d.addNode(Opcode::Add, Operand::node(tb),
                                  Operand::node(rho));
            NodeId bin = d.addNode(Opcode::Add, Operand::node(b1),
                                   Operand::input(rm),
                                   Operand::none(), "bin");
            NodeId cur = d.addNode(Opcode::Load, Operand::node(bin),
                                   Operand::none(), Operand::none(),
                                   "acc");
            NodeId inc = d.addNode(Opcode::Add, Operand::node(cur),
                                   Operand::imm(1));
            d.addNode(Opcode::Store, Operand::node(bin),
                      Operand::node(inc), Operand::none(), "acc");
            d.addOutput("rho", rho);
        }
        copyBlock(skip);
        copyBlock(xlatch);
        copyBlock(ylatch);
        copyBlock(done);

        b.fall(init, yloop);
        b.fall(yloop, xloop);
        b.fall(xloop, pif);
        b.branch(pif, theta, skip);
        b.fall(theta, vote);
        b.loopBack(vote, theta);
        b.loopExit(theta, xlatch);
        b.fall(skip, xlatch);
        b.loopBack(xlatch, xloop);
        b.loopExit(xloop, ylatch);
        b.loopBack(ylatch, yloop);
        b.loopExit(yloop, done);
        return b.finish();
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        // Reduced machine-run dimensions (the golden trace above
        // keeps the full Table-5 image); same pixel statistics and
        // Q15 vote arithmetic.
        constexpr int mH = 40;
        constexpr int mW = 60;
        constexpr int mT = 60;
        constexpr int mRhoMax = mW + mH;
        constexpr Word base_img = 0;                   // mH x mW
        constexpr Word base_cos = mH * mW;             // mT
        constexpr Word base_sin = base_cos + mT;       // mT
        constexpr Word base_acc = base_sin + mT;       // mT x 2rho

        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["y_loop"] = {0, mH, 1};
        spec.loopBounds["x_loop"] = {0, mW, 1};
        spec.loopBounds["theta_loop"] = {0, mT, 1};
        spec.inductionPorts["y_loop"] = "y";
        spec.inductionPorts["x_loop"] = "x";
        spec.inductionPorts["theta_loop"] = "theta";
        spec.arrayBases["img"] = base_img;
        spec.arrayBases["cos"] = base_cos;
        spec.arrayBases["sin"] = base_sin;
        spec.arrayBases["acc"] = base_acc;
        spec.scalars["imgw"] = mW;
        spec.scalars["binw"] = 2 * mRhoMax;
        spec.scalars["rhomax"] = mRhoMax;

        Rng rng(0x5eed0005);
        std::vector<Word> img(static_cast<std::size_t>(mH * mW));
        for (int y = 0; y < mH; ++y) {
            for (int x = 0; x < mW; ++x) {
                bool line = (x + 2 * y) % 23 == 0 ||
                            (3 * x - y) % 31 == 0;
                Word noise =
                    static_cast<Word>(rng.nextBounded(100));
                img[static_cast<std::size_t>(y * mW + x)] =
                    line ? 200 + noise % 56 : noise;
            }
        }
        std::vector<Word> cos_t(mT), sin_t(mT);
        for (int t = 0; t < mT; ++t) {
            double a = 3.14159265358979 * t / mT;
            cos_t[static_cast<std::size_t>(t)] =
                static_cast<Word>(32767.0 * std::cos(a));
            sin_t[static_cast<std::size_t>(t)] =
                static_cast<Word>(32767.0 * std::sin(a));
        }

        spec.memoryImage.assign(
            static_cast<std::size_t>(base_acc), 0);
        std::copy(img.begin(), img.end(),
                  spec.memoryImage.begin());
        std::copy(cos_t.begin(), cos_t.end(),
                  spec.memoryImage.begin() + base_cos);
        std::copy(sin_t.begin(), sin_t.end(),
                  spec.memoryImage.begin() + base_sin);

        // Golden vote accumulation.
        std::vector<Word> acc(
            static_cast<std::size_t>(mT * 2 * mRhoMax), 0);
        for (int y = 0; y < mH; ++y) {
            for (int x = 0; x < mW; ++x) {
                if (img[static_cast<std::size_t>(y * mW + x)] <=
                    kThreshold)
                    continue;
                for (int t = 0; t < mT; ++t) {
                    Word rho = static_cast<Word>(
                        (static_cast<std::int64_t>(x) *
                             cos_t[static_cast<std::size_t>(t)] +
                         static_cast<std::int64_t>(y) *
                             sin_t[static_cast<std::size_t>(t)]) >>
                        15);
                    int bin =
                        t * 2 * mRhoMax + (rho + mRhoMax);
                    ++acc[static_cast<std::size_t>(bin)];
                }
            }
        }

        spec.expectedMemory = {{"acc", base_acc, std::move(acc)}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0005);
        // Synthetic image: mostly dark with a few bright lines
        // (about 10% edge pixels, the HosNa-like density).
        std::vector<Word> img(
            static_cast<std::size_t>(kHeight * kWidth));
        for (int y = 0; y < kHeight; ++y) {
            for (int x = 0; x < kWidth; ++x) {
                bool line = (x + 2 * y) % 23 == 0 ||
                            (3 * x - y) % 31 == 0;
                Word noise =
                    static_cast<Word>(rng.nextBounded(100));
                img[static_cast<std::size_t>(y * kWidth + x)] =
                    line ? 200 + noise % 56 : noise;
            }
        }
        // Q15 trig tables.
        std::vector<Word> cos_t(kThetas), sin_t(kThetas);
        for (int t = 0; t < kThetas; ++t) {
            double a = 3.14159265358979 * t / kThetas;
            cos_t[static_cast<std::size_t>(t)] =
                static_cast<Word>(32767.0 * std::cos(a));
            sin_t[static_cast<std::size_t>(t)] =
                static_cast<Word>(32767.0 * std::sin(a));
        }
        const int rho_max = kWidth + kHeight;
        std::vector<Word> acc(
            static_cast<std::size_t>(kThetas * 2 * rho_max), 0);

        rec.block(bInit);
        rec.round(bYLoop);
        for (int y = 0; y < kHeight; ++y) {
            rec.iteration(bYLoop);
            rec.round(bXLoop);
            for (int x = 0; x < kWidth; ++x) {
                rec.iteration(bXLoop);
                rec.block(bPixelIf);
                if (img[static_cast<std::size_t>(
                        y * kWidth + x)] > kThreshold) {
                    rec.round(bThetaLoop);
                    for (int t = 0; t < kThetas; ++t) {
                        rec.iteration(bThetaLoop);
                        rec.block(bVote);
                        Word rho = static_cast<Word>(
                            (static_cast<std::int64_t>(x) *
                                 cos_t[static_cast<std::size_t>(
                                     t)] +
                             static_cast<std::int64_t>(y) *
                                 sin_t[static_cast<std::size_t>(
                                     t)]) >>
                            15);
                        int bin = t * 2 * rho_max +
                                  (rho + rho_max);
                        ++acc[static_cast<std::size_t>(bin)];
                    }
                } else {
                    rec.block(bSkip);
                }
                rec.block(bXLatch);
            }
            rec.block(bYLatch);
        }
        rec.block(bDone);

        std::uint64_t sum = 0;
        for (const Word v : acc)
            sum = sum * 31 +
                  static_cast<std::uint64_t>(static_cast<UWord>(v));
        return sum;
    }
};

} // namespace

const Workload &
houghWorkload()
{
    static HoughWorkload instance;
    return instance;
}

} // namespace marionette
