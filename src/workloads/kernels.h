/**
 * @file
 * Accessors for the 13 benchmark singletons (Table 5).
 */

#ifndef MARIONETTE_WORKLOADS_KERNELS_H
#define MARIONETTE_WORKLOADS_KERNELS_H

#include "workloads/workload.h"

namespace marionette
{

const Workload &mergeSortWorkload();  ///< MS: 1024 elements.
const Workload &fftWorkload();        ///< FFT: 1024 points.
const Workload &viterbiWorkload();    ///< VI: 64 st, 140 obs.
const Workload &nwWorkload();         ///< NW: 128 x 128.
const Workload &houghWorkload();      ///< HT: 120 x 180.
const Workload &crcWorkload();        ///< CRC: 64 bytes.
const Workload &adpcmWorkload();      ///< ADPCM: 2000 bytes.
const Workload &scDecodeWorkload();   ///< SCD: 2048 channels.
const Workload &ldpcWorkload();       ///< LDPC: 20 it, 128 bits.
const Workload &gemmWorkload();       ///< GEMM: 64 x 64.
const Workload &conv1dWorkload();     ///< CO: 16384.
const Workload &sigmoidWorkload();    ///< SI: 2048.
const Workload &grayWorkload();       ///< GP: 16384.

} // namespace marionette

#endif // MARIONETTE_WORKLOADS_KERNELS_H
