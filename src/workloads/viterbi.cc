/**
 * @file
 * Viterbi decoding (VI) — 64 states, 140 observations, 64 tokens.
 *
 * MachSuite-style dynamic program: for each observation and each
 * state, the innermost loop scans predecessor states and keeps the
 * minimum path metric — an innermost branch executed
 * 140 x 64 x 64 times.  Table 1: innermost branch, imperfect
 * nested loops.
 */

#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kStates = 64;
constexpr int kObs = 140;
constexpr int kTokens = 64;

enum Block : BlockId
{
    bInit = 0,
    bObsLoop,    // observations (depth 1)
    bStateLoop,  // destination states (depth 2)
    bSeed,       // best = +inf seed (imperfect work at depth 2)
    bPrevLoop,   // predecessor states (depth 3)
    bScore,      // metric = path[prev] + trans + emit
    bMinIf,      // if (metric < best)
    bMinUpd,     // best = metric, arg = prev
    bMinSkip,
    bPrevLatch,
    bStore,      // path'[state] = best (depth 2)
    bStateLatch,
    bObsLatch,
    bBackLoop,   // backtrace (depth 1)
    bBackBody,
    bDone
};

class ViterbiWorkload : public Workload
{
  public:
    std::string name() const override { return "VI"; }
    std::string fullName() const override { return "Viterbi"; }
    std::string
    sizeDesc() const override
    {
        return "64 stages; 140 obs; 64 tokens";
    }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("viterbi");
        BlockId init = b.addBlock("init");
        BlockId obs = b.addLoopHeader("obs_loop");
        BlockId state = b.addLoopHeader("state_loop");
        BlockId seed = b.addBlock("seed");
        BlockId prev = b.addLoopHeader("prev_loop");
        BlockId score = b.addBlock("score");
        BlockId minif = b.addBranchBlock("min_if");
        BlockId minupd = b.addBlock("min_upd");
        BlockId minskip = b.addBlock("min_skip");
        BlockId platch = b.addBlock("prev_latch");
        BlockId store = b.addBlock("store");
        BlockId slatch = b.addBlock("state_latch");
        BlockId olatch = b.addBlock("obs_latch");
        BlockId back = b.addLoopHeader("back_loop");
        BlockId backb = b.addBlock("back_body");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("t", c);
        }
        for (BlockId hdr : {obs, state, prev, back}) {
            Dfg &d = b.dfg(hdr);
            dfg_patterns::addCountedLoop(d, 0, 1, "bound");
        }
        {   // seed best metric.
            Dfg &d = b.dfg(seed);
            NodeId inf = d.addNode(Opcode::Const,
                                   Operand::imm(0x7fffffff));
            d.addOutput("best", inf);
        }
        {   // metric = path[prev] + trans[prev][s] + emit[s][obs].
            Dfg &d = b.dfg(score);
            int p = d.addInput("prev");
            int s = d.addInput("state");
            NodeId pm = d.addNode(Opcode::Load, Operand::input(p),
                                  Operand::none(), Operand::none(),
                                  "path[prev]");
            NodeId ti = d.addNode(Opcode::Shl, Operand::input(p),
                                  Operand::imm(6));
            NodeId ti2 = d.addNode(Opcode::Add, Operand::node(ti),
                                   Operand::input(s));
            NodeId tr = d.addNode(Opcode::Load, Operand::node(ti2),
                                  Operand::none(), Operand::none(),
                                  "trans");
            NodeId m1 = d.addNode(Opcode::Add, Operand::node(pm),
                                  Operand::node(tr));
            NodeId em = d.addNode(Opcode::Load, Operand::input(s),
                                  Operand::none(), Operand::none(),
                                  "emit");
            NodeId m2 = d.addNode(Opcode::Add, Operand::node(m1),
                                  Operand::node(em), Operand::none(),
                                  "metric");
            d.addOutput("metric", m2);
        }
        {
            Dfg &d = b.dfg(minif);
            int m = d.addInput("metric");
            int best = d.addInput("best");
            NodeId lt = d.addNode(Opcode::CmpLt, Operand::input(m),
                                  Operand::input(best));
            d.addNode(Opcode::Branch, Operand::node(lt));
            d.addOutput("lt", lt);
        }
        {
            Dfg &d = b.dfg(minupd);
            int m = d.addInput("metric");
            int p = d.addInput("prev");
            NodeId nb = d.addNode(Opcode::Copy, Operand::input(m),
                                  Operand::none(), Operand::none(),
                                  "best'");
            NodeId na = d.addNode(Opcode::Copy, Operand::input(p),
                                  Operand::none(), Operand::none(),
                                  "arg'");
            d.addOutput("best", nb);
            d.addOutput("arg", na);
        }
        copyBlock(minskip);
        copyBlock(platch);
        {   // store new path metric and backpointer.
            Dfg &d = b.dfg(store);
            int s = d.addInput("state");
            int best = d.addInput("best");
            int arg = d.addInput("arg");
            d.addNode(Opcode::Store, Operand::input(s),
                      Operand::input(best));
            d.addNode(Opcode::Store, Operand::input(s),
                      Operand::input(arg));
            NodeId c = d.addNode(Opcode::Copy, Operand::input(s));
            d.addOutput("x", c);
        }
        copyBlock(slatch);
        copyBlock(olatch);
        {   // backtrace body: state = bp[t][state].
            Dfg &d = b.dfg(backb);
            int s = d.addInput("state");
            NodeId bp = d.addNode(Opcode::Load, Operand::input(s));
            d.addNode(Opcode::Store, Operand::input(s),
                      Operand::node(bp));
            d.addOutput("state", bp);
        }
        copyBlock(done);

        b.fall(init, obs);
        b.fall(obs, state);
        b.fall(state, seed);
        b.fall(seed, prev);
        b.fall(prev, score);
        b.fall(score, minif);
        b.branch(minif, minupd, minskip);
        b.fall(minupd, platch);
        b.fall(minskip, platch);
        b.loopBack(platch, prev);
        b.loopExit(prev, store);
        b.fall(store, slatch);
        b.loopBack(slatch, state);
        b.loopExit(state, olatch);
        b.loopBack(olatch, obs);
        b.loopExit(obs, back);
        b.fall(back, backb);
        b.loopBack(backb, back);
        b.loopExit(back, done);
        return b.finish();
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0003);
        std::vector<Word> trans(
            static_cast<std::size_t>(kStates * kStates));
        std::vector<Word> emit(
            static_cast<std::size_t>(kStates * kTokens));
        std::vector<int> observations(
            static_cast<std::size_t>(kObs));
        for (Word &v : trans)
            v = static_cast<Word>(rng.nextRange(1, 100));
        for (Word &v : emit)
            v = static_cast<Word>(rng.nextRange(1, 100));
        for (int &o : observations)
            o = static_cast<int>(rng.nextBounded(kTokens));

        std::vector<Word> path(static_cast<std::size_t>(kStates),
                               0);
        std::vector<Word> next(static_cast<std::size_t>(kStates));
        std::vector<std::vector<int>> bp(
            static_cast<std::size_t>(kObs),
            std::vector<int>(static_cast<std::size_t>(kStates),
                             0));

        rec.block(bInit);
        rec.round(bObsLoop);
        for (int t = 0; t < kObs; ++t) {
            rec.iteration(bObsLoop);
            rec.round(bStateLoop);
            for (int s = 0; s < kStates; ++s) {
                rec.iteration(bStateLoop);
                rec.block(bSeed);
                Word best = 0x7fffffff;
                int arg = 0;
                rec.round(bPrevLoop);
                for (int p = 0; p < kStates; ++p) {
                    rec.iteration(bPrevLoop);
                    rec.block(bScore);
                    Word metric =
                        path[static_cast<std::size_t>(p)] +
                        trans[static_cast<std::size_t>(
                            p * kStates + s)] +
                        emit[static_cast<std::size_t>(
                            s * kTokens +
                            observations[static_cast<std::size_t>(
                                t)])];
                    rec.block(bMinIf);
                    if (metric < best) {
                        rec.block(bMinUpd);
                        best = metric;
                        arg = p;
                    } else {
                        rec.block(bMinSkip);
                    }
                    rec.block(bPrevLatch);
                }
                rec.block(bStore);
                next[static_cast<std::size_t>(s)] = best;
                bp[static_cast<std::size_t>(t)]
                  [static_cast<std::size_t>(s)] = arg;
                rec.block(bStateLatch);
            }
            path.swap(next);
            rec.block(bObsLatch);
        }

        // Backtrace.
        int state = 0;
        for (int s = 1; s < kStates; ++s)
            if (path[static_cast<std::size_t>(s)] <
                path[static_cast<std::size_t>(state)])
                state = s;
        std::uint64_t sum =
            static_cast<std::uint64_t>(static_cast<UWord>(
                path[static_cast<std::size_t>(state)]));
        rec.round(bBackLoop);
        for (int t = kObs - 1; t >= 0; --t) {
            rec.iteration(bBackLoop);
            rec.block(bBackBody);
            state = bp[static_cast<std::size_t>(t)]
                      [static_cast<std::size_t>(state)];
            sum = sum * 31 + static_cast<std::uint64_t>(state);
        }
        rec.block(bDone);
        return sum;
    }
};

} // namespace

const Workload &
viterbiWorkload()
{
    static ViterbiWorkload instance;
    return instance;
}

} // namespace marionette
