/**
 * @file
 * Viterbi decoding (VI) — 64 states, 140 observations, 64 tokens.
 *
 * MachSuite-style dynamic program: for each observation and each
 * state, the innermost loop scans predecessor states and keeps the
 * minimum path metric — an innermost branch executed
 * 140 x 64 x 64 times.  Table 1: innermost branch, imperfect
 * nested loops.
 */

#include <algorithm>
#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kStates = 64;
constexpr int kObs = 140;
constexpr int kTokens = 64;

enum Block : BlockId
{
    bInit = 0,
    bObsLoop,    // observations (depth 1)
    bStateLoop,  // destination states (depth 2)
    bSeed,       // best = +inf seed (imperfect work at depth 2)
    bPrevLoop,   // predecessor states (depth 3)
    bScore,      // metric = path[prev] + trans + emit
    bMinIf,      // if (metric < best)
    bMinUpd,     // best = metric, arg = prev
    bMinSkip,
    bPrevLatch,
    bStore,      // path'[state] = best (depth 2)
    bStateLatch,
    bObsLatch,
    bBackLoop,   // backtrace (depth 1)
    bBackBody,
    bDone
};

class ViterbiWorkload : public Workload
{
  public:
    std::string name() const override { return "VI"; }
    std::string fullName() const override { return "Viterbi"; }
    std::string
    sizeDesc() const override
    {
        return "64 stages; 140 obs; 64 tokens";
    }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("viterbi");
        BlockId init = b.addBlock("init");
        BlockId obs = b.addLoopHeader("obs_loop");
        BlockId state = b.addLoopHeader("state_loop");
        BlockId seed = b.addBlock("seed");
        BlockId prev = b.addLoopHeader("prev_loop");
        BlockId score = b.addBlock("score");
        BlockId minif = b.addBranchBlock("min_if");
        BlockId minupd = b.addBlock("min_upd");
        BlockId minskip = b.addBlock("min_skip");
        BlockId platch = b.addBlock("prev_latch");
        BlockId store = b.addBlock("store");
        BlockId slatch = b.addBlock("state_latch");
        BlockId olatch = b.addBlock("obs_latch");
        BlockId back = b.addLoopHeader("back_loop");
        BlockId backb = b.addBlock("back_body");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("t", c);
        }
        for (BlockId hdr : {obs, state, prev, back}) {
            Dfg &d = b.dfg(hdr);
            dfg_patterns::addCountedLoop(d, 0, 1, "bound");
        }
        {   // seed best metric (and its arg-min companion).
            Dfg &d = b.dfg(seed);
            NodeId inf = d.addNode(Opcode::Const,
                                   Operand::imm(0x7fffffff));
            NodeId zero = d.addNode(Opcode::Const,
                                    Operand::imm(0));
            d.addOutput("best", inf);
            d.addOutput("arg", zero);
        }
        {   // metric = path[prev] + trans[prev][s] + emit[s][obs];
            // the path metrics ping-pong between two halves of the
            // path array by observation parity.
            Dfg &d = b.dfg(score);
            int p = d.addInput("prev");
            int s = d.addInput("state");
            int t = d.addInput("t");
            NodeId par = d.addNode(Opcode::And, Operand::input(t),
                                   Operand::imm(1));
            NodeId pp = d.addNode(Opcode::Shl, Operand::node(par),
                                  Operand::imm(6), Operand::none(),
                                  "ping");
            NodeId pa = d.addNode(Opcode::Add, Operand::node(pp),
                                  Operand::input(p));
            NodeId pm = d.addNode(Opcode::Load, Operand::node(pa),
                                  Operand::none(), Operand::none(),
                                  "path");
            NodeId ti = d.addNode(Opcode::Shl, Operand::input(p),
                                  Operand::imm(6));
            NodeId ti2 = d.addNode(Opcode::Add, Operand::node(ti),
                                   Operand::input(s));
            NodeId tr = d.addNode(Opcode::Load, Operand::node(ti2),
                                  Operand::none(), Operand::none(),
                                  "trans");
            NodeId ob = d.addNode(Opcode::Load, Operand::input(t),
                                  Operand::none(), Operand::none(),
                                  "obs");
            NodeId ei = d.addNode(Opcode::Shl, Operand::input(s),
                                  Operand::imm(6));
            NodeId ei2 = d.addNode(Opcode::Add, Operand::node(ei),
                                   Operand::node(ob));
            NodeId em = d.addNode(Opcode::Load, Operand::node(ei2),
                                  Operand::none(), Operand::none(),
                                  "emit");
            NodeId m1 = d.addNode(Opcode::Add, Operand::node(pm),
                                  Operand::node(tr));
            NodeId m2 = d.addNode(Opcode::Add, Operand::node(m1),
                                  Operand::node(em), Operand::none(),
                                  "metric");
            d.addOutput("metric", m2);
        }
        {
            Dfg &d = b.dfg(minif);
            int m = d.addInput("metric");
            int best = d.addInput("best");
            int arg = d.addInput("arg");
            NodeId lt = d.addNode(Opcode::CmpLt, Operand::input(m),
                                  Operand::input(best));
            d.addNode(Opcode::Branch, Operand::node(lt));
            NodeId ac = d.addNode(Opcode::Copy,
                                  Operand::input(arg));
            d.addOutput("lt", lt);
            d.addOutput("arg", ac);
        }
        {
            Dfg &d = b.dfg(minupd);
            int m = d.addInput("metric");
            int p = d.addInput("prev");
            NodeId nb = d.addNode(Opcode::Copy, Operand::input(m),
                                  Operand::none(), Operand::none(),
                                  "best'");
            NodeId na = d.addNode(Opcode::Copy, Operand::input(p),
                                  Operand::none(), Operand::none(),
                                  "arg'");
            d.addOutput("best", nb);
            d.addOutput("arg", na);
        }
        copyBlock(minskip);
        copyBlock(platch);
        {   // store new path metric (other ping-pong half) and the
            // backpointer bp[t][state].
            Dfg &d = b.dfg(store);
            int s = d.addInput("state");
            int best = d.addInput("best");
            int arg = d.addInput("arg");
            int t = d.addInput("t");
            NodeId t1 = d.addNode(Opcode::Add, Operand::input(t),
                                  Operand::imm(1));
            NodeId par = d.addNode(Opcode::And, Operand::node(t1),
                                   Operand::imm(1));
            NodeId np = d.addNode(Opcode::Shl, Operand::node(par),
                                  Operand::imm(6));
            NodeId na = d.addNode(Opcode::Add, Operand::node(np),
                                  Operand::input(s));
            d.addNode(Opcode::Store, Operand::node(na),
                      Operand::input(best), Operand::none(),
                      "path");
            NodeId bi = d.addNode(Opcode::Shl, Operand::input(t),
                                  Operand::imm(6));
            NodeId ba = d.addNode(Opcode::Add, Operand::node(bi),
                                  Operand::input(s));
            d.addNode(Opcode::Store, Operand::node(ba),
                      Operand::input(arg), Operand::none(), "bp");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(s));
            d.addOutput("x", c);
        }
        copyBlock(slatch);
        copyBlock(olatch);
        {   // backtrace body: walk bp from the last observation,
            // folding the visited states into a checksum stream.
            Dfg &d = b.dfg(backb);
            int j = d.addInput("j");
            int last = d.addInput("lastT");
            int s = d.addInput("bstate");
            int sum = d.addInput("bsum");
            NodeId tt = d.addNode(Opcode::Sub, Operand::input(last),
                                  Operand::input(j));
            NodeId bi = d.addNode(Opcode::Shl, Operand::node(tt),
                                  Operand::imm(6));
            NodeId ba = d.addNode(Opcode::Add, Operand::node(bi),
                                  Operand::input(s));
            NodeId bp = d.addNode(Opcode::Load, Operand::node(ba),
                                  Operand::none(), Operand::none(),
                                  "bp");
            d.addNode(Opcode::Store, Operand::input(j),
                      Operand::node(bp), Operand::none(), "trace");
            NodeId m31 = d.addNode(Opcode::Mul, Operand::input(sum),
                                   Operand::imm(31));
            NodeId ns = d.addNode(Opcode::Add, Operand::node(m31),
                                  Operand::node(bp));
            d.addOutput("bstate", bp);
            d.addOutput("bsum", ns);
        }
        copyBlock(done);

        b.fall(init, obs);
        b.fall(obs, state);
        b.fall(state, seed);
        b.fall(seed, prev);
        b.fall(prev, score);
        b.fall(score, minif);
        b.branch(minif, minupd, minskip);
        b.fall(minupd, platch);
        b.fall(minskip, platch);
        b.loopBack(platch, prev);
        b.loopExit(prev, store);
        b.fall(store, slatch);
        b.loopBack(slatch, state);
        b.loopExit(state, olatch);
        b.loopBack(olatch, obs);
        b.loopExit(obs, back);
        b.fall(back, backb);
        b.loopBack(backb, back);
        b.loopExit(back, done);
        return b.finish();
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        // Machine-run data at a reduced observation count (the
        // golden trace above keeps the full Table-5 size); states
        // and tokens match the paper.
        constexpr int mObs = 32;
        constexpr Word base_path = 0;                      // 2 x 64
        constexpr Word base_obs = 128;                     // mObs
        constexpr Word base_trans = base_obs + mObs;       // 64 x 64
        constexpr Word base_emit = base_trans + 64 * 64;   // 64 x 64
        constexpr Word base_bp = base_emit + 64 * 64;      // mObs x 64
        constexpr Word base_trace = base_bp + mObs * 64;   // mObs

        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["obs_loop"] = {0, mObs, 1};
        spec.loopBounds["state_loop"] = {0, kStates, 1};
        spec.loopBounds["prev_loop"] = {0, kStates, 1};
        spec.loopBounds["back_loop"] = {0, mObs, 1};
        spec.inductionPorts["obs_loop"] = "t";
        spec.inductionPorts["state_loop"] = "state";
        spec.inductionPorts["prev_loop"] = "prev";
        spec.inductionPorts["back_loop"] = "j";
        spec.arrayBases["path"] = base_path;
        spec.arrayBases["obs"] = base_obs;
        spec.arrayBases["trans"] = base_trans;
        spec.arrayBases["emit"] = base_emit;
        spec.arrayBases["bp"] = base_bp;
        spec.arrayBases["trace"] = base_trace;
        spec.scalars["lastT"] = mObs - 1;
        spec.scalars["bstate"] = 0;
        spec.scalars["bsum"] = 0;

        // Inputs, generated in the golden implementation's order.
        Rng rng(0x5eed0003);
        std::vector<Word> trans(
            static_cast<std::size_t>(kStates * kStates));
        std::vector<Word> emit(
            static_cast<std::size_t>(kStates * kTokens));
        std::vector<Word> observations(
            static_cast<std::size_t>(kObs));
        for (Word &v : trans)
            v = static_cast<Word>(rng.nextRange(1, 100));
        for (Word &v : emit)
            v = static_cast<Word>(rng.nextRange(1, 100));
        for (Word &o : observations)
            o = static_cast<Word>(rng.nextBounded(kTokens));

        spec.memoryImage.assign(
            static_cast<std::size_t>(base_bp), 0);
        for (int i = 0; i < mObs; ++i)
            spec.memoryImage[static_cast<std::size_t>(base_obs +
                                                      i)] =
                observations[static_cast<std::size_t>(i)];
        std::copy(trans.begin(), trans.end(),
                  spec.memoryImage.begin() + base_trans);
        std::copy(emit.begin(), emit.end(),
                  spec.memoryImage.begin() + base_emit);

        // Golden run: best-metric stream, ping-pong path halves,
        // backpointers, and the backtrace checksum stream.
        std::vector<Word> path(2 * 64, 0);
        std::vector<Word> bp(
            static_cast<std::size_t>(mObs * 64), 0);
        std::vector<Word> best_stream;
        best_stream.reserve(
            static_cast<std::size_t>(mObs) * 64 * 64);
        for (int t = 0; t < mObs; ++t) {
            int cur = (t & 1) * 64;
            int nxt = ((t + 1) & 1) * 64;
            for (int s = 0; s < kStates; ++s) {
                Word best = 0x7fffffff;
                Word arg = 0;
                for (int p = 0; p < kStates; ++p) {
                    Word metric =
                        path[static_cast<std::size_t>(cur + p)] +
                        trans[static_cast<std::size_t>(
                            p * kStates + s)] +
                        emit[static_cast<std::size_t>(
                            s * kTokens +
                            observations[static_cast<std::size_t>(
                                t)])];
                    if (metric < best) {
                        best = metric;
                        arg = static_cast<Word>(p);
                    }
                    best_stream.push_back(best);
                }
                path[static_cast<std::size_t>(nxt + s)] = best;
                bp[static_cast<std::size_t>(t * 64 + s)] = arg;
            }
        }
        std::vector<Word> trace(static_cast<std::size_t>(mObs));
        std::vector<Word> bsum_stream;
        Word bstate = 0, bsum = 0;
        for (int j = 0; j < mObs; ++j) {
            int tt = mObs - 1 - j;
            bstate =
                bp[static_cast<std::size_t>(tt * 64 + bstate)];
            trace[static_cast<std::size_t>(j)] = bstate;
            bsum = static_cast<Word>(
                static_cast<std::uint32_t>(bsum) * 31u +
                static_cast<std::uint32_t>(bstate));
            bsum_stream.push_back(bsum);
        }

        spec.observePorts = {"best", "bsum"};
        spec.expectedOutputs = {std::move(best_stream),
                                std::move(bsum_stream)};
        spec.expectedMemory = {
            {"path", base_path, std::move(path)},
            {"bp", base_bp, std::move(bp)},
            {"trace", base_trace, std::move(trace)}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0003);
        std::vector<Word> trans(
            static_cast<std::size_t>(kStates * kStates));
        std::vector<Word> emit(
            static_cast<std::size_t>(kStates * kTokens));
        std::vector<int> observations(
            static_cast<std::size_t>(kObs));
        for (Word &v : trans)
            v = static_cast<Word>(rng.nextRange(1, 100));
        for (Word &v : emit)
            v = static_cast<Word>(rng.nextRange(1, 100));
        for (int &o : observations)
            o = static_cast<int>(rng.nextBounded(kTokens));

        std::vector<Word> path(static_cast<std::size_t>(kStates),
                               0);
        std::vector<Word> next(static_cast<std::size_t>(kStates));
        std::vector<std::vector<int>> bp(
            static_cast<std::size_t>(kObs),
            std::vector<int>(static_cast<std::size_t>(kStates),
                             0));

        rec.block(bInit);
        rec.round(bObsLoop);
        for (int t = 0; t < kObs; ++t) {
            rec.iteration(bObsLoop);
            rec.round(bStateLoop);
            for (int s = 0; s < kStates; ++s) {
                rec.iteration(bStateLoop);
                rec.block(bSeed);
                Word best = 0x7fffffff;
                int arg = 0;
                rec.round(bPrevLoop);
                for (int p = 0; p < kStates; ++p) {
                    rec.iteration(bPrevLoop);
                    rec.block(bScore);
                    Word metric =
                        path[static_cast<std::size_t>(p)] +
                        trans[static_cast<std::size_t>(
                            p * kStates + s)] +
                        emit[static_cast<std::size_t>(
                            s * kTokens +
                            observations[static_cast<std::size_t>(
                                t)])];
                    rec.block(bMinIf);
                    if (metric < best) {
                        rec.block(bMinUpd);
                        best = metric;
                        arg = p;
                    } else {
                        rec.block(bMinSkip);
                    }
                    rec.block(bPrevLatch);
                }
                rec.block(bStore);
                next[static_cast<std::size_t>(s)] = best;
                bp[static_cast<std::size_t>(t)]
                  [static_cast<std::size_t>(s)] = arg;
                rec.block(bStateLatch);
            }
            path.swap(next);
            rec.block(bObsLatch);
        }

        // Backtrace.
        int state = 0;
        for (int s = 1; s < kStates; ++s)
            if (path[static_cast<std::size_t>(s)] <
                path[static_cast<std::size_t>(state)])
                state = s;
        std::uint64_t sum =
            static_cast<std::uint64_t>(static_cast<UWord>(
                path[static_cast<std::size_t>(state)]));
        rec.round(bBackLoop);
        for (int t = kObs - 1; t >= 0; --t) {
            rec.iteration(bBackLoop);
            rec.block(bBackBody);
            state = bp[static_cast<std::size_t>(t)]
                      [static_cast<std::size_t>(state)];
            sum = sum * 31 + static_cast<std::uint64_t>(state);
        }
        rec.block(bDone);
        return sum;
    }
};

} // namespace

const Workload &
viterbiWorkload()
{
    static ViterbiWorkload instance;
    return instance;
}

} // namespace marionette
