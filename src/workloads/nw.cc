/**
 * @file
 * Needleman-Wunsch (NW) — 128 x 128 sequence alignment.
 *
 * MachSuite-style DP over the alignment matrix with a *nested*
 * branch (three-way max) in the innermost loop.  Table 1: nested
 * branches innermost, nested loops.
 */

#include <algorithm>
#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kLen = 128;
constexpr Word kMatch = 1;
constexpr Word kMismatch = -1;
constexpr Word kGap = -1;

enum Block : BlockId
{
    bInit = 0,
    bRowLoop,   // depth 1
    bColLoop,   // depth 2
    bScores,    // compute diag/up/left candidates
    bIf1,       // if (diag >= up)
    bIf2a,      // taken:   if (diag >= left)
    bIf2b,      // nottaken:if (up >= left)
    bPickDiag,
    bPickLeftA,
    bPickUp,
    bPickLeftB,
    bStoreCell, // join: M[i][j] = winner
    bRowLatch,
    bTraceLoop, // backtrace (depth 1)
    bTraceBody,
    bDone
};

class NwWorkload : public Workload
{
  public:
    std::string name() const override { return "NW"; }
    std::string fullName() const override
    { return "Needleman-Wunsch"; }
    std::string sizeDesc() const override { return "128 x 128"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("nw");
        BlockId init = b.addBlock("init");
        BlockId row = b.addLoopHeader("row_loop");
        BlockId col = b.addLoopHeader("col_loop");
        BlockId scores = b.addBlock("scores");
        BlockId if1 = b.addBranchBlock("if_diag_up");
        BlockId if2a = b.addBranchBlock("if_diag_left");
        BlockId if2b = b.addBranchBlock("if_up_left");
        BlockId pdiag = b.addBlock("pick_diag");
        BlockId plefta = b.addBlock("pick_left_a");
        BlockId pup = b.addBlock("pick_up");
        BlockId pleftb = b.addBlock("pick_left_b");
        BlockId cell = b.addBlock("store_cell");
        BlockId rlatch = b.addBlock("row_latch");
        BlockId trace = b.addLoopHeader("trace_loop");
        BlockId traceb = b.addBlock("trace_body");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id, const char *out_name) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput(out_name, c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("i", c);
        }
        for (BlockId hdr : {row, col, trace}) {
            Dfg &d = b.dfg(hdr);
            dfg_patterns::addCountedLoop(d, 1, 1, "bound");
        }
        {   // candidates: the previous row is read from memory, the
            // left neighbour is the previous iteration's winner
            // (loop-carried), with the column-0 boundary selected
            // at the start of each row.
            Dfg &d = b.dfg(scores);
            int i = d.addInput("i");
            int j = d.addInput("j");
            int winc = d.addInput("win");
            NodeId im1 = d.addNode(Opcode::Sub, Operand::input(i),
                                   Operand::imm(1));
            NodeId a = d.addNode(Opcode::Load, Operand::node(im1),
                                 Operand::none(), Operand::none(),
                                 "seqA");
            NodeId jm1 = d.addNode(Opcode::Sub, Operand::input(j),
                                   Operand::imm(1));
            NodeId bb2 = d.addNode(Opcode::Load, Operand::node(jm1),
                                   Operand::none(), Operand::none(),
                                   "seqB");
            NodeId eq = d.addNode(Opcode::CmpEq, Operand::node(a),
                                  Operand::node(bb2));
            NodeId sc = d.addNode(Opcode::Select, Operand::node(eq),
                                  Operand::imm(kMatch),
                                  Operand::imm(kMismatch), "sub");
            NodeId rb = d.addNode(Opcode::Mul, Operand::node(im1),
                                  Operand::imm(kLen + 1));
            NodeId da = d.addNode(Opcode::Add, Operand::node(rb),
                                  Operand::node(jm1));
            NodeId mnw = d.addNode(Opcode::Load, Operand::node(da),
                                   Operand::none(), Operand::none(),
                                   "M");
            NodeId diag = d.addNode(Opcode::Add, Operand::node(mnw),
                                    Operand::node(sc));
            NodeId ua = d.addNode(Opcode::Add, Operand::node(rb),
                                  Operand::input(j));
            NodeId mn = d.addNode(Opcode::Load, Operand::node(ua),
                                  Operand::none(), Operand::none(),
                                  "M");
            NodeId up = d.addNode(Opcode::Add, Operand::node(mn),
                                  Operand::imm(kGap));
            NodeId isf = d.addNode(Opcode::CmpEq, Operand::input(j),
                                   Operand::imm(1));
            NodeId bnd = d.addNode(Opcode::Mul, Operand::input(i),
                                   Operand::imm(kGap), // M[i][0]
                                   Operand::none(), "bound");
            NodeId mw = d.addNode(Opcode::Select, Operand::node(isf),
                                  Operand::node(bnd),
                                  Operand::input(winc));
            NodeId left = d.addNode(Opcode::Add, Operand::node(mw),
                                    Operand::imm(kGap));
            d.addOutput("diag", diag);
            d.addOutput("up", up);
            d.addOutput("left", left);
        }
        auto branchBlock = [&](BlockId id, const char *x,
                               const char *y) {
            Dfg &d = b.dfg(id);
            int xi = d.addInput(x);
            int yi = d.addInput(y);
            NodeId ge = d.addNode(Opcode::CmpGe, Operand::input(xi),
                                  Operand::input(yi));
            d.addNode(Opcode::Branch, Operand::node(ge));
            d.addOutput("ge", ge);
        };
        branchBlock(if1, "diag", "up");
        branchBlock(if2a, "diag", "left");
        branchBlock(if2b, "up", "left");
        auto pickBlock = [&](BlockId id, const char *src) {
            Dfg &d = b.dfg(id);
            int x = d.addInput(src);
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("win", c);
        };
        pickBlock(pdiag, "diag");
        pickBlock(plefta, "left");
        pickBlock(pup, "up");
        pickBlock(pleftb, "left");
        {
            Dfg &d = b.dfg(cell);
            int i = d.addInput("i");
            int j = d.addInput("j");
            int win = d.addInput("win");
            NodeId rb = d.addNode(Opcode::Mul, Operand::input(i),
                                  Operand::imm(kLen + 1));
            NodeId ca = d.addNode(Opcode::Add, Operand::node(rb),
                                  Operand::input(j));
            d.addNode(Opcode::Store, Operand::node(ca),
                      Operand::input(win), Operand::none(), "M");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(win));
            d.addOutput("x", c);
        }
        copyBlock(rlatch, "x");
        {   // trace body: walk the main diagonal from the corner,
            // folding the cells into a checksum stream.
            Dfg &d = b.dfg(traceb);
            int jt = d.addInput("jt");
            int last = d.addInput("lastI");
            int sum = d.addInput("tsum");
            NodeId ii = d.addNode(Opcode::Sub, Operand::input(last),
                                  Operand::input(jt));
            NodeId da = d.addNode(Opcode::Mul, Operand::node(ii),
                                  Operand::imm(kLen + 2));
            NodeId v = d.addNode(Opcode::Load, Operand::node(da),
                                 Operand::none(), Operand::none(),
                                 "M");
            d.addNode(Opcode::Store, Operand::input(jt),
                      Operand::node(v), Operand::none(), "trace");
            NodeId m31 = d.addNode(Opcode::Mul, Operand::input(sum),
                                   Operand::imm(31));
            NodeId ns = d.addNode(Opcode::Add, Operand::node(m31),
                                  Operand::node(v));
            d.addOutput("tsum", ns);
        }
        copyBlock(done, "x");

        b.fall(init, row);
        b.fall(row, col);
        b.fall(col, scores);
        b.fall(scores, if1);
        b.branch(if1, if2a, if2b);
        b.branch(if2a, pdiag, plefta);
        b.branch(if2b, pup, pleftb);
        b.fall(pdiag, cell);
        b.fall(plefta, cell);
        b.fall(pup, cell);
        b.fall(pleftb, cell);
        b.loopBack(cell, col);
        b.loopExit(col, rlatch);
        b.loopBack(rlatch, row);
        b.loopExit(row, trace);
        b.fall(trace, traceb);
        b.loopBack(traceb, trace);
        b.loopExit(trace, done);
        return b.finish();
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        constexpr int w = kLen + 1;
        constexpr Word base_m = 0;                 // 129 x 129
        constexpr Word base_a = w * w;             // 128
        constexpr Word base_b = base_a + kLen;     // 128
        constexpr Word base_tr = base_b + kLen;    // 128

        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["row_loop"] = {1, w, 1};
        spec.loopBounds["col_loop"] = {1, w, 1};
        spec.loopBounds["trace_loop"] = {0, kLen, 1};
        spec.inductionPorts["row_loop"] = "i";
        spec.inductionPorts["col_loop"] = "j";
        spec.inductionPorts["trace_loop"] = "jt";
        spec.arrayBases["M"] = base_m;
        spec.arrayBases["seqA"] = base_a;
        spec.arrayBases["seqB"] = base_b;
        spec.arrayBases["trace"] = base_tr;
        spec.scalars["lastI"] = kLen;
        spec.scalars["tsum"] = 0;

        Rng rng(0x5eed0004);
        std::vector<Word> seq_a(static_cast<std::size_t>(kLen));
        std::vector<Word> seq_b(static_cast<std::size_t>(kLen));
        for (Word &v : seq_a)
            v = static_cast<Word>(rng.nextBounded(4));
        for (Word &v : seq_b)
            v = static_cast<Word>(rng.nextBounded(4));

        std::vector<Word> m(static_cast<std::size_t>(w * w), 0);
        for (int i = 0; i <= kLen; ++i) {
            m[static_cast<std::size_t>(i * w)] = kGap * i;
            m[static_cast<std::size_t>(i)] = kGap * i;
        }

        spec.memoryImage.assign(
            static_cast<std::size_t>(base_tr), 0);
        std::copy(m.begin(), m.end(), spec.memoryImage.begin());
        std::copy(seq_a.begin(), seq_a.end(),
                  spec.memoryImage.begin() + base_a);
        std::copy(seq_b.begin(), seq_b.end(),
                  spec.memoryImage.begin() + base_b);

        // Golden DP, recording the winner stream.
        std::vector<Word> wins;
        wins.reserve(static_cast<std::size_t>(kLen) * kLen);
        for (int i = 1; i <= kLen; ++i) {
            for (int j = 1; j <= kLen; ++j) {
                Word sub =
                    seq_a[static_cast<std::size_t>(i - 1)] ==
                            seq_b[static_cast<std::size_t>(j - 1)]
                        ? kMatch
                        : kMismatch;
                Word diag = m[static_cast<std::size_t>(
                                (i - 1) * w + (j - 1))] +
                            sub;
                Word up = m[static_cast<std::size_t>((i - 1) * w +
                                                     j)] +
                          kGap;
                Word left =
                    m[static_cast<std::size_t>(i * w + (j - 1))] +
                    kGap;
                Word win;
                if (diag >= up)
                    win = diag >= left ? diag : left;
                else
                    win = up >= left ? up : left;
                m[static_cast<std::size_t>(i * w + j)] = win;
                wins.push_back(win);
            }
        }
        std::vector<Word> trace(static_cast<std::size_t>(kLen));
        std::vector<Word> tsum_stream;
        Word tsum = 0;
        for (int jt = 0; jt < kLen; ++jt) {
            int ii = kLen - jt;
            Word v = m[static_cast<std::size_t>(ii * w + ii)];
            trace[static_cast<std::size_t>(jt)] = v;
            tsum = static_cast<Word>(
                static_cast<std::uint32_t>(tsum) * 31u +
                static_cast<std::uint32_t>(v));
            tsum_stream.push_back(tsum);
        }

        spec.observePorts = {"win", "tsum"};
        spec.expectedOutputs = {std::move(wins),
                                std::move(tsum_stream)};
        spec.expectedMemory = {
            {"M", base_m, std::move(m)},
            {"trace", base_tr, std::move(trace)}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0004);
        std::vector<Word> seq_a(static_cast<std::size_t>(kLen));
        std::vector<Word> seq_b(static_cast<std::size_t>(kLen));
        for (Word &v : seq_a)
            v = static_cast<Word>(rng.nextBounded(4)); // ACGT.
        for (Word &v : seq_b)
            v = static_cast<Word>(rng.nextBounded(4));

        const int w = kLen + 1;
        std::vector<Word> m(
            static_cast<std::size_t>(w * w), 0);
        for (int i = 0; i <= kLen; ++i) {
            m[static_cast<std::size_t>(i * w)] = kGap * i;
            m[static_cast<std::size_t>(i)] = kGap * i;
        }

        rec.block(bInit);
        rec.round(bRowLoop);
        for (int i = 1; i <= kLen; ++i) {
            rec.iteration(bRowLoop);
            rec.round(bColLoop);
            for (int j = 1; j <= kLen; ++j) {
                rec.iteration(bColLoop);
                rec.block(bScores);
                Word sub =
                    seq_a[static_cast<std::size_t>(i - 1)] ==
                            seq_b[static_cast<std::size_t>(j - 1)]
                        ? kMatch
                        : kMismatch;
                Word diag =
                    m[static_cast<std::size_t>((i - 1) * w +
                                               (j - 1))] + sub;
                Word up =
                    m[static_cast<std::size_t>((i - 1) * w + j)] +
                    kGap;
                Word left =
                    m[static_cast<std::size_t>(i * w + (j - 1))] +
                    kGap;
                Word win;
                rec.block(bIf1);
                if (diag >= up) {
                    rec.block(bIf2a);
                    if (diag >= left) {
                        rec.block(bPickDiag);
                        win = diag;
                    } else {
                        rec.block(bPickLeftA);
                        win = left;
                    }
                } else {
                    rec.block(bIf2b);
                    if (up >= left) {
                        rec.block(bPickUp);
                        win = up;
                    } else {
                        rec.block(bPickLeftB);
                        win = left;
                    }
                }
                rec.block(bStoreCell);
                m[static_cast<std::size_t>(i * w + j)] = win;
            }
            rec.block(bRowLatch);
        }

        // Backtrace along the main diagonal (simplified greedy).
        std::uint64_t sum = 0;
        rec.round(bTraceLoop);
        for (int i = kLen; i > 0; --i) {
            rec.iteration(bTraceLoop);
            rec.block(bTraceBody);
            sum = sum * 31 +
                  static_cast<std::uint64_t>(static_cast<UWord>(
                      m[static_cast<std::size_t>(i * w + i)]));
        }
        rec.block(bDone);
        return sum;
    }
};

} // namespace

const Workload &
nwWorkload()
{
    static NwWorkload instance;
    return instance;
}

} // namespace marionette
