/**
 * @file
 * CRC-32 (CRC) — 64 bytes (MiBench-derived, bitwise).
 *
 * Two serial loops at the top level (message preparation, then the
 * main byte loop) with the polynomial-reduction branch in the
 * innermost bit loop.  Table 1: innermost branch, imperfect nested
 * loops, serial loops.  Largely unpipelineable: every bit iteration
 * depends on the previous one (Sec. 7.2: control-transfer overhead
 * dominates, which is why the control network helps CRC most).
 */

#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kBytes = 64;
constexpr UWord kPoly = 0xedb88320u;

enum Block : BlockId
{
    bInit = 0,
    bPrepLoop,  // message prep (serial loop 1, depth 1)
    bPrepBody,
    bByteLoop,  // main loop (serial loop 2, depth 1)
    bXorIn,     // crc ^= byte
    bBitLoop,   // 8 bit steps (depth 2)
    bMsbIf,     // if (crc & 1)
    bPolyStep,  // crc = (crc >> 1) ^ poly
    bShiftStep, // crc = crc >> 1
    bBitLatch,
    bByteLatch,
    bDone
};

class CrcWorkload : public Workload
{
  public:
    std::string name() const override { return "CRC"; }
    std::string fullName() const override { return "CRC"; }
    std::string sizeDesc() const override { return "64 bytes"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("crc");
        BlockId init = b.addBlock("init");
        BlockId prep = b.addLoopHeader("prep_loop");
        BlockId prepb = b.addBlock("prep_body");
        BlockId byte = b.addLoopHeader("byte_loop");
        BlockId xorin = b.addBlock("xor_in");
        BlockId bit = b.addLoopHeader("bit_loop");
        BlockId msbif = b.addBranchBlock("msb_if");
        BlockId poly = b.addBlock("poly_step");
        BlockId shift = b.addBlock("shift_step");
        BlockId blatch = b.addBlock("bit_latch");
        BlockId bylatch = b.addBlock("byte_latch");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const,
                                 Operand::imm(-1)); // 0xffffffff
            d.addOutput("crc", c);
        }
        for (BlockId hdr : {prep, byte, bit}) {
            Dfg &d = b.dfg(hdr);
            dfg_patterns::addCountedLoop(d, 0, 1, "bound");
        }
        {   // prep: msg[i] = raw[i] ^ salt.
            Dfg &d = b.dfg(prepb);
            int i = d.addInput("i");
            NodeId v = d.addNode(Opcode::Load, Operand::input(i));
            NodeId x = d.addNode(Opcode::Xor, Operand::node(v),
                                 Operand::imm(0x5a));
            d.addNode(Opcode::Store, Operand::input(i),
                      Operand::node(x));
            d.addOutput("x", x);
        }
        {   // crc ^= msg[i].
            Dfg &d = b.dfg(xorin);
            int i = d.addInput("i");
            int crc = d.addInput("crc");
            NodeId v = d.addNode(Opcode::Load, Operand::input(i));
            NodeId x = d.addNode(Opcode::Xor, Operand::input(crc),
                                 Operand::node(v));
            d.addOutput("crc", x);
        }
        {   // if (crc & 1).
            Dfg &d = b.dfg(msbif);
            int crc = d.addInput("crc");
            NodeId lsb = d.addNode(Opcode::And, Operand::input(crc),
                                   Operand::imm(1));
            d.addNode(Opcode::Branch, Operand::node(lsb));
            d.addOutput("lsb", lsb);
        }
        {   // crc = (crc >> 1) ^ poly.
            Dfg &d = b.dfg(poly);
            int crc = d.addInput("crc");
            NodeId sh = d.addNode(Opcode::Shr, Operand::input(crc),
                                  Operand::imm(1));
            NodeId x = d.addNode(Opcode::Xor, Operand::node(sh),
                                 Operand::imm(
                                     static_cast<Word>(kPoly)));
            d.addOutput("crc", x);
        }
        {   // crc = crc >> 1.
            Dfg &d = b.dfg(shift);
            int crc = d.addInput("crc");
            NodeId sh = d.addNode(Opcode::Shr, Operand::input(crc),
                                  Operand::imm(1));
            d.addOutput("crc", sh);
        }
        copyBlock(blatch);
        copyBlock(bylatch);
        copyBlock(done);

        b.fall(init, prep);
        b.fall(prep, prepb);
        b.loopBack(prepb, prep);
        b.loopExit(prep, byte);
        b.fall(byte, xorin);
        b.fall(xorin, bit);
        b.fall(bit, msbif);
        b.branch(msbif, poly, shift);
        b.fall(poly, blatch);
        b.fall(shift, blatch);
        b.loopBack(blatch, bit);
        b.loopExit(bit, bylatch);
        b.loopBack(bylatch, byte);
        b.loopExit(byte, done);
        return b.finish();
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["prep_loop"] = {0, kBytes, 1};
        spec.loopBounds["byte_loop"] = {0, kBytes, 1};
        spec.loopBounds["bit_loop"] = {0, 8, 1};
        spec.inductionPorts["prep_loop"] = "i";
        spec.inductionPorts["byte_loop"] = "i";
        Rng rng(0x5eed0006);
        spec.memoryImage.resize(static_cast<std::size_t>(kBytes));
        for (Word &v : spec.memoryImage)
            v = static_cast<Word>(rng.nextBounded(256));
        // Golden trace of the bit loop's "crc" port (the value
        // after every polynomial/shift step) and the salted
        // message the prep phase must leave in memory.
        std::vector<Word> msg = spec.memoryImage;
        for (Word &v : msg)
            v ^= 0x5a;
        std::vector<Word> steps;
        steps.reserve(static_cast<std::size_t>(kBytes) * 8);
        UWord crc = 0xffffffffu;
        for (int i = 0; i < kBytes; ++i) {
            crc ^= static_cast<UWord>(
                msg[static_cast<std::size_t>(i)]);
            for (int k = 0; k < 8; ++k) {
                crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
                steps.push_back(static_cast<Word>(crc));
            }
        }
        spec.observePorts = {"crc"};
        spec.expectedOutputs = {std::move(steps)};
        spec.expectedMemory = {{"msg", 0, std::move(msg)}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0006);
        std::vector<UWord> msg(static_cast<std::size_t>(kBytes));
        for (UWord &v : msg)
            v = static_cast<UWord>(rng.nextBounded(256));

        rec.block(bInit);
        rec.round(bPrepLoop);
        for (int i = 0; i < kBytes; ++i) {
            rec.iteration(bPrepLoop);
            rec.block(bPrepBody);
            msg[static_cast<std::size_t>(i)] ^= 0x5a;
        }

        UWord crc = 0xffffffffu;
        rec.round(bByteLoop);
        for (int i = 0; i < kBytes; ++i) {
            rec.iteration(bByteLoop);
            rec.block(bXorIn);
            crc ^= msg[static_cast<std::size_t>(i)];
            rec.round(bBitLoop);
            for (int k = 0; k < 8; ++k) {
                rec.iteration(bBitLoop);
                rec.block(bMsbIf);
                if (crc & 1u) {
                    rec.block(bPolyStep);
                    crc = (crc >> 1) ^ kPoly;
                } else {
                    rec.block(bShiftStep);
                    crc >>= 1;
                }
                rec.block(bBitLatch);
            }
            rec.block(bByteLatch);
        }
        rec.block(bDone);
        return ~crc;
    }
};

} // namespace

const Workload &
crcWorkload()
{
    static CrcWorkload instance;
    return instance;
}

} // namespace marionette
