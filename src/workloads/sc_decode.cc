/**
 * @file
 * Successive-Cancellation polar decoding (SCD) — 2048 channels
 * (Arikan 2009).
 *
 * Min-sum SC decoding of a rate-1/2 polar code: the recursive
 * f/g LLR computations form inner loops of data-dependent length,
 * with the bit decision branching at each leaf and the partial-sum
 * update as a second (serial) inner loop.  Table 1: innermost
 * branch, imperfect nested loops, serial loops.
 */

#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kN = 2048;
constexpr int kLogN = 11;

enum Block : BlockId
{
    bInit = 0,
    bPhaseLoop,  // leaf phases (depth 1)
    bLlrLoop,    // f/g LLR recomputation (depth 2)
    bLlrF,       // f node: sign-min
    bLlrG,       // g node: add/sub by partial sum
    bDecideIf,   // frozen / sign decision branch
    bSetZero,
    bSetSign,
    bPsumLoop,   // partial-sum update (depth 2, serial to LLR loop)
    bPsumBody,
    bPhaseLatch,
    bDone
};

/** min-sum f: sign(a) sign(b) min(|a|, |b|). */
Word
fNode(Word a, Word b)
{
    Word mag = std::min(a < 0 ? -a : a, b < 0 ? -b : b);
    return ((a < 0) != (b < 0)) ? -mag : mag;
}

/** g: b + (1 - 2u) a. */
Word
gNode(Word a, Word b, Word u)
{
    return u ? b - a : b + a;
}

class ScDecodeWorkload : public Workload
{
  public:
    std::string name() const override { return "SCD"; }
    std::string fullName() const override { return "SC Decode"; }
    std::string sizeDesc() const override
    { return "2048 channels"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("sc_decode");
        BlockId init = b.addBlock("init");
        BlockId phase = b.addLoopHeader("phase_loop");
        BlockId llr = b.addLoopHeader("llr_loop");
        BlockId fnode = b.addBlock("llr_f");
        BlockId gnode = b.addBlock("llr_g");
        BlockId decide = b.addBranchBlock("decide_if");
        BlockId setz = b.addBlock("set_zero");
        BlockId sets = b.addBlock("set_sign");
        BlockId psum = b.addLoopHeader("psum_loop");
        BlockId psumb = b.addBlock("psum_body");
        BlockId platch = b.addBlock("phase_latch");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("phase", c);
        }
        for (BlockId hdr : {phase, llr, psum}) {
            Dfg &d = b.dfg(hdr);
            dfg_patterns::addCountedLoop(d, 0, 1, "bound");
        }
        {   // f: sign-min of the two child LLRs.
            Dfg &d = b.dfg(fnode);
            int i = d.addInput("i");
            NodeId a = d.addNode(Opcode::Load, Operand::input(i));
            NodeId bb2 = d.addNode(Opcode::Load, Operand::input(i));
            NodeId aa = d.addNode(Opcode::Abs, Operand::node(a));
            NodeId ab = d.addNode(Opcode::Abs, Operand::node(bb2));
            NodeId mn = d.addNode(Opcode::Min, Operand::node(aa),
                                  Operand::node(ab));
            NodeId sx = d.addNode(Opcode::Xor, Operand::node(a),
                                  Operand::node(bb2));
            NodeId sg = d.addNode(Opcode::CmpLt, Operand::node(sx),
                                  Operand::imm(0));
            NodeId nm = d.addNode(Opcode::Neg, Operand::node(mn));
            NodeId r = d.addNode(Opcode::Select, Operand::node(sg),
                                 Operand::node(nm),
                                 Operand::node(mn), "f");
            d.addNode(Opcode::Store, Operand::input(i),
                      Operand::node(r));
            d.addOutput("f", r);
        }
        {   // g: b +/- a by the partial sum bit.
            Dfg &d = b.dfg(gnode);
            int i = d.addInput("i");
            int u = d.addInput("u");
            NodeId a = d.addNode(Opcode::Load, Operand::input(i));
            NodeId bb2 = d.addNode(Opcode::Load, Operand::input(i));
            NodeId sub = d.addNode(Opcode::Sub, Operand::node(bb2),
                                   Operand::node(a));
            NodeId add = d.addNode(Opcode::Add, Operand::node(bb2),
                                   Operand::node(a));
            NodeId r = d.addNode(Opcode::Select, Operand::input(u),
                                 Operand::node(sub),
                                 Operand::node(add), "g");
            d.addNode(Opcode::Store, Operand::input(i),
                      Operand::node(r));
            d.addOutput("g", r);
        }
        {   // frozen or sign decision.
            Dfg &d = b.dfg(decide);
            int llr_in = d.addInput("llr");
            int frozen = d.addInput("frozen");
            NodeId neg = d.addNode(Opcode::CmpLt,
                                   Operand::input(llr_in),
                                   Operand::imm(0));
            NodeId nf = d.addNode(Opcode::Not,
                                  Operand::input(frozen));
            NodeId bit = d.addNode(Opcode::And, Operand::node(neg),
                                   Operand::node(nf));
            d.addNode(Opcode::Branch, Operand::node(bit));
            d.addOutput("bit", bit);
        }
        copyBlock(setz);
        copyBlock(sets);
        {   // partial-sum xor update.
            Dfg &d = b.dfg(psumb);
            int i = d.addInput("i");
            int bit = d.addInput("bit");
            NodeId p = d.addNode(Opcode::Load, Operand::input(i));
            NodeId x = d.addNode(Opcode::Xor, Operand::node(p),
                                 Operand::input(bit));
            d.addNode(Opcode::Store, Operand::input(i),
                      Operand::node(x));
            d.addOutput("x", x);
        }
        copyBlock(platch);
        copyBlock(done);

        b.fall(init, phase);
        b.fall(phase, llr);
        b.fall(llr, fnode);
        b.fall(fnode, gnode);
        b.loopBack(gnode, llr);
        b.loopExit(llr, decide);
        b.branch(decide, sets, setz);
        b.fall(sets, psum);
        b.fall(setz, psum);
        b.fall(psum, psumb);
        b.loopBack(psumb, psum);
        b.loopExit(psum, platch);
        b.loopBack(platch, phase);
        b.loopExit(phase, done);
        return b.finish();
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0008);
        // Synthetic received LLRs: clean codeword of zeros with
        // noise, so the decoder has real work but a checkable
        // output distribution.
        std::vector<Word> channel_llr(
            static_cast<std::size_t>(kN));
        for (Word &v : channel_llr)
            v = static_cast<Word>(rng.nextRange(-14, 18));
        // Frozen set: lower half (a rate-1/2 polar code's frozen
        // positions approximated by index weight).
        std::vector<bool> frozen(static_cast<std::size_t>(kN));
        for (int i = 0; i < kN; ++i) {
            int pop = __builtin_popcount(
                static_cast<unsigned>(i));
            frozen[static_cast<std::size_t>(i)] = pop < 6;
        }

        // Iterative SC with per-level LLR and partial-sum arrays;
        // level l holds N / 2^l entries, level 0 is the channel.
        std::vector<std::vector<Word>> llr(kLogN + 1);
        std::vector<std::vector<Word>> psum(kLogN + 1);
        for (int l = 0; l <= kLogN; ++l) {
            llr[static_cast<std::size_t>(l)].assign(
                static_cast<std::size_t>(kN >> l), 0);
            psum[static_cast<std::size_t>(l)].assign(
                static_cast<std::size_t>(kN >> l), 0);
        }
        llr[0] = channel_llr;

        std::uint64_t sum = 0;
        rec.block(bInit);
        rec.round(bPhaseLoop);
        for (int phase = 0; phase < kN; ++phase) {
            rec.iteration(bPhaseLoop);
            // Levels to (re)compute down to the leaf: ctz(phase)+1
            // of them (the classic SC schedule).
            int start_level =
                phase == 0
                    ? 0
                    : kLogN - 1 -
                          __builtin_ctz(
                              static_cast<unsigned>(phase));
            // Recompute LLRs from start_level to the leaf level.
            rec.round(bLlrLoop);
            for (int l = start_level; l < kLogN; ++l) {
                int len = kN >> (l + 1);
                bool is_g = ((phase >> (kLogN - 1 - l)) & 1) != 0;
                for (int k = 0; k < len; ++k) {
                    rec.iteration(bLlrLoop);
                    Word a =
                        llr[static_cast<std::size_t>(l)]
                           [static_cast<std::size_t>(k)];
                    Word bb2 =
                        llr[static_cast<std::size_t>(l)]
                           [static_cast<std::size_t>(k + len)];
                    if (is_g) {
                        rec.block(bLlrG);
                        Word u =
                            psum[static_cast<std::size_t>(l + 1)]
                                [static_cast<std::size_t>(k)];
                        llr[static_cast<std::size_t>(l + 1)]
                           [static_cast<std::size_t>(k)] =
                               gNode(a, bb2, u);
                    } else {
                        rec.block(bLlrF);
                        llr[static_cast<std::size_t>(l + 1)]
                           [static_cast<std::size_t>(k)] =
                               fNode(a, bb2);
                    }
                }
            }
            // Leaf decision.
            Word leaf = llr[static_cast<std::size_t>(kLogN)][0];
            Word bit;
            rec.block(bDecideIf);
            if (!frozen[static_cast<std::size_t>(phase)] &&
                leaf < 0) {
                rec.block(bSetSign);
                bit = 1;
            } else {
                rec.block(bSetZero);
                bit = 0;
            }
            sum = sum * 3 + static_cast<std::uint64_t>(bit);

            // Partial-sum update: propagate the decided bit up
            // while phase has trailing ones.
            psum[static_cast<std::size_t>(kLogN)][0] = bit;
            rec.round(bPsumLoop);
            int l = kLogN;
            int ph = phase;
            while (l > 0 && (ph & 1)) {
                int len = kN >> l;
                for (int k = 0; k < len; ++k) {
                    rec.iteration(bPsumLoop);
                    rec.block(bPsumBody);
                    Word lo =
                        psum[static_cast<std::size_t>(l)]
                            [static_cast<std::size_t>(k)];
                    psum[static_cast<std::size_t>(l - 1)]
                        [static_cast<std::size_t>(k)] =
                            lo ^ psum[static_cast<std::size_t>(
                                     l - 1)]
                                     [static_cast<std::size_t>(k)];
                    psum[static_cast<std::size_t>(l - 1)]
                        [static_cast<std::size_t>(k + len)] = lo;
                }
                --l;
                ph >>= 1;
            }
            rec.block(bPhaseLatch);
        }
        rec.block(bDone);
        return sum;
    }
};

} // namespace

const Workload &
scDecodeWorkload()
{
    static ScDecodeWorkload instance;
    return instance;
}

} // namespace marionette
