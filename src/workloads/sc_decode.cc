/**
 * @file
 * Successive-Cancellation polar decoding (SCD) — 2048 channels
 * (Arikan 2009).
 *
 * Min-sum SC decoding of a rate-1/2 polar code: the recursive
 * f/g LLR computations form inner loops of data-dependent length,
 * with the bit decision branching at each leaf and the partial-sum
 * update as a second (serial) inner loop.  Table 1: innermost
 * branch, imperfect nested loops, serial loops.
 */

#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kN = 2048;
constexpr int kLogN = 11;

enum Block : BlockId
{
    bInit = 0,
    bPhaseLoop,  // leaf phases (depth 1)
    bLlrLoop,    // f/g LLR recomputation (depth 2)
    bLlrF,       // f node: sign-min
    bLlrG,       // g node: add/sub by partial sum
    bDecideIf,   // frozen / sign decision branch
    bSetZero,
    bSetSign,
    bPsumLoop,   // partial-sum update (depth 2, serial to LLR loop)
    bPsumBody,
    bPhaseLatch,
    bDone
};

/** min-sum f: sign(a) sign(b) min(|a|, |b|). */
Word
fNode(Word a, Word b)
{
    Word mag = std::min(a < 0 ? -a : a, b < 0 ? -b : b);
    return ((a < 0) != (b < 0)) ? -mag : mag;
}

/** g: b + (1 - 2u) a. */
Word
gNode(Word a, Word b, Word u)
{
    return u ? b - a : b + a;
}

class ScDecodeWorkload : public Workload
{
  public:
    std::string name() const override { return "SCD"; }
    std::string fullName() const override { return "SC Decode"; }
    std::string sizeDesc() const override
    { return "2048 channels"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("sc_decode");
        BlockId init = b.addBlock("init");
        BlockId phase = b.addLoopHeader("phase_loop");
        BlockId llr = b.addLoopHeader("llr_loop");
        BlockId fnode = b.addBlock("llr_f");
        BlockId gnode = b.addBlock("llr_g");
        BlockId decide = b.addBranchBlock("decide_if");
        BlockId setz = b.addBlock("set_zero");
        BlockId sets = b.addBlock("set_sign");
        BlockId psum = b.addLoopHeader("psum_loop");
        BlockId psumb = b.addBlock("psum_body");
        BlockId platch = b.addBlock("phase_latch");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("phase", c);
        }
        for (BlockId hdr : {phase, llr, psum}) {
            Dfg &d = b.dfg(hdr);
            dfg_patterns::addCountedLoop(d, 0, 1, "bound");
        }
        {   // f: sign-min of the two child LLRs.  The loads are
            // fenced on the llr store chain (the carried store
            // token, LDPC's idiom) so the flattened pipeline
            // respects memory order; the store's own address stays
            // unfenced (its value chain already orders it) so the
            // backend can fuse the fence into the loads.
            Dfg &d = b.dfg(fnode);
            int i = d.addInput("i");
            int lw = d.addInput("llrw");
            NodeId z = d.addNode(Opcode::And, Operand::input(lw),
                                 Operand::imm(0), Operand::none(),
                                 "fence");
            NodeId la = d.addNode(Opcode::Add, Operand::input(i),
                                  Operand::node(z));
            NodeId a = d.addNode(Opcode::Load, Operand::node(la),
                                 Operand::none(), Operand::none(),
                                 "llr");
            NodeId bb2 = d.addNode(Opcode::Load, Operand::node(la),
                                   Operand::none(), Operand::none(),
                                   "llr");
            NodeId aa = d.addNode(Opcode::Abs, Operand::node(a));
            NodeId ab = d.addNode(Opcode::Abs, Operand::node(bb2));
            NodeId mn = d.addNode(Opcode::Min, Operand::node(aa),
                                  Operand::node(ab));
            NodeId sx = d.addNode(Opcode::Xor, Operand::node(a),
                                  Operand::node(bb2));
            NodeId sg = d.addNode(Opcode::CmpLt, Operand::node(sx),
                                  Operand::imm(0));
            NodeId nm = d.addNode(Opcode::Neg, Operand::node(mn));
            NodeId r = d.addNode(Opcode::Select, Operand::node(sg),
                                 Operand::node(nm),
                                 Operand::node(mn), "f");
            NodeId st = d.addNode(Opcode::Store, Operand::input(i),
                                  Operand::node(r),
                                  Operand::none(), "llr");
            d.addOutput("f", r);
            d.addOutput("llrw", st);
        }
        {   // g: b +/- a by the partial sum bit, fenced on f's
            // store of the same slot (and the previous slot's g).
            Dfg &d = b.dfg(gnode);
            int i = d.addInput("i");
            int u = d.addInput("u");
            int lw = d.addInput("llrw");
            NodeId z = d.addNode(Opcode::And, Operand::input(lw),
                                 Operand::imm(0), Operand::none(),
                                 "fence");
            NodeId la = d.addNode(Opcode::Add, Operand::input(i),
                                  Operand::node(z));
            NodeId a = d.addNode(Opcode::Load, Operand::node(la),
                                 Operand::none(), Operand::none(),
                                 "llr");
            NodeId bb2 = d.addNode(Opcode::Load, Operand::node(la),
                                   Operand::none(), Operand::none(),
                                   "llr");
            NodeId sub = d.addNode(Opcode::Sub, Operand::node(bb2),
                                   Operand::node(a));
            NodeId add = d.addNode(Opcode::Add, Operand::node(bb2),
                                   Operand::node(a));
            NodeId r = d.addNode(Opcode::Select, Operand::input(u),
                                 Operand::node(sub),
                                 Operand::node(add), "g");
            NodeId st = d.addNode(Opcode::Store, Operand::input(i),
                                  Operand::node(r),
                                  Operand::none(), "llr");
            d.addOutput("g", r);
            d.addOutput("llrw", st);
        }
        {   // frozen or sign decision.
            Dfg &d = b.dfg(decide);
            int llr_in = d.addInput("llr");
            int frozen = d.addInput("frozen");
            NodeId neg = d.addNode(Opcode::CmpLt,
                                   Operand::input(llr_in),
                                   Operand::imm(0));
            NodeId nf = d.addNode(Opcode::Not,
                                  Operand::input(frozen));
            NodeId bit = d.addNode(Opcode::And, Operand::node(neg),
                                   Operand::node(nf));
            d.addNode(Opcode::Branch, Operand::node(bit));
            d.addOutput("bit", bit);
        }
        copyBlock(setz);
        copyBlock(sets);
        {   // partial-sum xor update, fenced on its own store
            // chain (the psum array is independent of llr).
            Dfg &d = b.dfg(psumb);
            int i = d.addInput("i");
            int bit = d.addInput("bit");
            int pw = d.addInput("psw");
            NodeId z = d.addNode(Opcode::And, Operand::input(pw),
                                 Operand::imm(0), Operand::none(),
                                 "fence");
            NodeId pa = d.addNode(Opcode::Add, Operand::input(i),
                                  Operand::node(z));
            NodeId p = d.addNode(Opcode::Load, Operand::node(pa),
                                 Operand::none(), Operand::none(),
                                 "psum");
            NodeId x = d.addNode(Opcode::Xor, Operand::node(p),
                                 Operand::input(bit));
            NodeId st = d.addNode(Opcode::Store, Operand::input(i),
                                  Operand::node(x),
                                  Operand::none(), "psum");
            d.addOutput("x", x);
            d.addOutput("psw", st);
        }
        copyBlock(platch);
        copyBlock(done);

        b.fall(init, phase);
        b.fall(phase, llr);
        b.fall(llr, fnode);
        b.fall(fnode, gnode);
        b.loopBack(gnode, llr);
        b.loopExit(llr, decide);
        b.branch(decide, sets, setz);
        b.fall(sets, psum);
        b.fall(setz, psum);
        b.fall(psum, psumb);
        b.loopBack(psumb, psum);
        b.loopExit(psum, platch);
        b.loopBack(platch, phase);
        b.loopExit(phase, done);
        return b.finish();
    }

    /**
     * Machine-run data for the *static-schedule* decode the CDFG
     * expresses: every phase recomputes the full LLR level and the
     * full partial-sum update over fixed trip counts (the
     * data-dependent SC schedule of runGolden needs loop bounds the
     * counted-loop machine cannot express; the flattened form is
     * the machine-sized variant, like VI's and HT's reduced runs).
     * The fence chains in the block DFGs make the memory order —
     * and therefore every golden value below — placement- and
     * timing-independent.
     */
    WorkloadMachineSpec
    machineSpec() const override
    {
        constexpr int kRounds = 7;
        constexpr int kLanes = 64;  // llr entries = psum entries.
        constexpr Word base_llr = 0;
        constexpr Word base_psum = kLanes;

        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["phase_loop"] = {0, kRounds, 1};
        spec.loopBounds["llr_loop"] = {0, kLanes, 1};
        spec.loopBounds["psum_loop"] = {0, kLanes, 1};
        spec.inductionPorts["llr_loop"] = "i";
        spec.inductionPorts["psum_loop"] = "i";
        spec.arrayBases["llr"] = base_llr;
        spec.arrayBases["psum"] = base_psum;
        // Scalar live-ins: the decision threshold inputs (a frozen
        // bit of 0 and a negative leaf LLR decide bit = 1) and the
        // g-node's partial-sum steering; plus the boot seeds of the
        // carried chains (store tokens, observed value).
        spec.scalars["llr"] = -5;
        spec.scalars["frozen"] = 0;
        spec.scalars["u"] = 0;
        spec.scalars["llrw"] = 0;
        spec.scalars["psw"] = 0;
        spec.scalars["x"] = 0;
        spec.scalars["f"] = 0;
        spec.scalars["g"] = 0;
        spec.scalars["bit"] = 0;

        Rng rng(0x5eed0008);
        std::vector<Word> llr(static_cast<std::size_t>(kLanes));
        std::vector<Word> psum(static_cast<std::size_t>(kLanes));
        for (Word &v : llr)
            v = static_cast<Word>(rng.nextRange(-99, 99));
        for (Word &v : psum)
            v = static_cast<Word>(rng.nextRange(0, 255));
        spec.memoryImage.assign(
            static_cast<std::size_t>(base_psum + kLanes), 0);
        for (int k = 0; k < kLanes; ++k) {
            spec.memoryImage[static_cast<std::size_t>(k)] =
                llr[static_cast<std::size_t>(k)];
            spec.memoryImage[static_cast<std::size_t>(base_psum +
                                                      k)] =
                psum[static_cast<std::size_t>(k)];
        }

        // Mirror the flattened per-slot semantics: 128 slots per
        // round (64 llr + 64 psum; the decision rides the first
        // psum slot, the latch the last).  The observed port 'x'
        // (the partial-sum value) streams its gated value on every
        // slot — frozen outside the psum range.
        std::vector<Word> stream;
        stream.reserve(
            static_cast<std::size_t>(kRounds) * 2 * kLanes);
        Word x = 0;
        const Word bit = 1; // llr < 0 and not frozen.
        for (int r = 0; r < kRounds; ++r) {
            for (int k = 0; k < kLanes; ++k) {
                Word v = llr[static_cast<std::size_t>(k)];
                Word fv = v < 0 ? -v : v; // sign-min of (v, v).
                Word gv = 2 * fv;         // u = 0: b + a.
                llr[static_cast<std::size_t>(k)] = gv;
                stream.push_back(x);
            }
            for (int k = 0; k < kLanes; ++k) {
                Word p = psum[static_cast<std::size_t>(k)];
                x = p ^ bit;
                psum[static_cast<std::size_t>(k)] = x;
                stream.push_back(x);
            }
        }
        spec.observePorts = {"x"};
        spec.expectedOutputs = {std::move(stream)};
        spec.expectedMemory = {
            {"llr", base_llr, llr},
            {"psum", base_psum, psum}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0008);
        // Synthetic received LLRs: clean codeword of zeros with
        // noise, so the decoder has real work but a checkable
        // output distribution.
        std::vector<Word> channel_llr(
            static_cast<std::size_t>(kN));
        for (Word &v : channel_llr)
            v = static_cast<Word>(rng.nextRange(-14, 18));
        // Frozen set: lower half (a rate-1/2 polar code's frozen
        // positions approximated by index weight).
        std::vector<bool> frozen(static_cast<std::size_t>(kN));
        for (int i = 0; i < kN; ++i) {
            int pop = __builtin_popcount(
                static_cast<unsigned>(i));
            frozen[static_cast<std::size_t>(i)] = pop < 6;
        }

        // Iterative SC with per-level LLR and partial-sum arrays;
        // level l holds N / 2^l entries, level 0 is the channel.
        std::vector<std::vector<Word>> llr(kLogN + 1);
        std::vector<std::vector<Word>> psum(kLogN + 1);
        for (int l = 0; l <= kLogN; ++l) {
            llr[static_cast<std::size_t>(l)].assign(
                static_cast<std::size_t>(kN >> l), 0);
            psum[static_cast<std::size_t>(l)].assign(
                static_cast<std::size_t>(kN >> l), 0);
        }
        llr[0] = channel_llr;

        std::uint64_t sum = 0;
        rec.block(bInit);
        rec.round(bPhaseLoop);
        for (int phase = 0; phase < kN; ++phase) {
            rec.iteration(bPhaseLoop);
            // Levels to (re)compute down to the leaf: ctz(phase)+1
            // of them (the classic SC schedule).
            int start_level =
                phase == 0
                    ? 0
                    : kLogN - 1 -
                          __builtin_ctz(
                              static_cast<unsigned>(phase));
            // Recompute LLRs from start_level to the leaf level.
            rec.round(bLlrLoop);
            for (int l = start_level; l < kLogN; ++l) {
                int len = kN >> (l + 1);
                bool is_g = ((phase >> (kLogN - 1 - l)) & 1) != 0;
                for (int k = 0; k < len; ++k) {
                    rec.iteration(bLlrLoop);
                    Word a =
                        llr[static_cast<std::size_t>(l)]
                           [static_cast<std::size_t>(k)];
                    Word bb2 =
                        llr[static_cast<std::size_t>(l)]
                           [static_cast<std::size_t>(k + len)];
                    if (is_g) {
                        rec.block(bLlrG);
                        Word u =
                            psum[static_cast<std::size_t>(l + 1)]
                                [static_cast<std::size_t>(k)];
                        llr[static_cast<std::size_t>(l + 1)]
                           [static_cast<std::size_t>(k)] =
                               gNode(a, bb2, u);
                    } else {
                        rec.block(bLlrF);
                        llr[static_cast<std::size_t>(l + 1)]
                           [static_cast<std::size_t>(k)] =
                               fNode(a, bb2);
                    }
                }
            }
            // Leaf decision.
            Word leaf = llr[static_cast<std::size_t>(kLogN)][0];
            Word bit;
            rec.block(bDecideIf);
            if (!frozen[static_cast<std::size_t>(phase)] &&
                leaf < 0) {
                rec.block(bSetSign);
                bit = 1;
            } else {
                rec.block(bSetZero);
                bit = 0;
            }
            sum = sum * 3 + static_cast<std::uint64_t>(bit);

            // Partial-sum update: propagate the decided bit up
            // while phase has trailing ones.
            psum[static_cast<std::size_t>(kLogN)][0] = bit;
            rec.round(bPsumLoop);
            int l = kLogN;
            int ph = phase;
            while (l > 0 && (ph & 1)) {
                int len = kN >> l;
                for (int k = 0; k < len; ++k) {
                    rec.iteration(bPsumLoop);
                    rec.block(bPsumBody);
                    Word lo =
                        psum[static_cast<std::size_t>(l)]
                            [static_cast<std::size_t>(k)];
                    psum[static_cast<std::size_t>(l - 1)]
                        [static_cast<std::size_t>(k)] =
                            lo ^ psum[static_cast<std::size_t>(
                                     l - 1)]
                                     [static_cast<std::size_t>(k)];
                    psum[static_cast<std::size_t>(l - 1)]
                        [static_cast<std::size_t>(k + len)] = lo;
                }
                --l;
                ph >>= 1;
            }
            rec.block(bPhaseLatch);
        }
        rec.block(bDone);
        return sum;
    }
};

} // namespace

const Workload &
scDecodeWorkload()
{
    static ScDecodeWorkload instance;
    return instance;
}

} // namespace marionette
