/**
 * @file
 * The three non-intensive control-flow baselines of Sec. 6.2:
 * Conv-1d (CO), Sigmoid (SI) and Gray Processing (GP) — "simple
 * single-layer loop applications, prepared as a fair comparison".
 * Each is one counted loop around a straight-line DFG; every
 * architecture should pipeline them equally well (Fig. 17's right
 * cluster), which is the control experiment showing Marionette's
 * features do not hurt regular kernels.
 */

#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

/** Common scaffold: init -> loop header -> body -> done. */
class SingleLoopWorkload : public Workload
{
  public:
    bool intensiveControlFlow() const override { return false; }

  protected:
    enum Block : BlockId
    {
        bInit = 0,
        bLoop,
        bBody,
        bDone
    };

    Cdfg
    scaffold(const std::string &name,
             const std::function<void(Dfg &)> &build_body) const
    {
        CdfgBuilder b(name);
        BlockId init = b.addBlock("init");
        BlockId loop = b.addLoopHeader("loop");
        BlockId body = b.addBlock("body");
        BlockId done = b.addBlock("done");
        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("i", c);
        }
        {
            Dfg &d = b.dfg(loop);
            dfg_patterns::addCountedLoop(d, 0, 1, "n");
        }
        build_body(b.dfg(body));
        {
            Dfg &d = b.dfg(done);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        }
        b.fall(init, loop);
        b.fall(loop, body);
        b.loopBack(body, loop);
        b.loopExit(loop, done);
        return b.finish();
    }
};

// ---------------------------------------------------------------
// Conv-1d: 16384 samples, 8-tap FIR.
// ---------------------------------------------------------------

constexpr int kConvN = 16384;
constexpr int kTaps = 8;

class Conv1dWorkload : public SingleLoopWorkload
{
  public:
    std::string name() const override { return "CO"; }
    std::string fullName() const override { return "Conv-1d"; }
    std::string sizeDesc() const override { return "16384"; }

    Cdfg
    buildCdfg() const override
    {
        return scaffold("conv1d", [](Dfg &d) {
            int i = d.addInput("i");
            NodeId acc = invalidNode;
            for (int t = 0; t < kTaps; ++t) {
                NodeId idx = d.addNode(Opcode::Add,
                                       Operand::input(i),
                                       Operand::imm(t));
                NodeId x = d.addNode(Opcode::Load,
                                     Operand::node(idx));
                if (acc == invalidNode) {
                    acc = d.addNode(Opcode::Mul, Operand::node(x),
                                    Operand::imm(3 + t));
                } else {
                    acc = d.addNode(Opcode::Mac, Operand::node(x),
                                    Operand::imm(3 + t),
                                    Operand::node(acc));
                }
            }
            d.addNode(Opcode::Store, Operand::input(i),
                      Operand::node(acc), Operand::none(), "y");
            d.addOutput("y", acc);
        });
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["loop"] = {0, kConvN, 1};
        spec.inductionPorts["loop"] = "i";
        const Word y_base = kConvN + kTaps;
        spec.arrayBases["y"] = y_base;
        Rng rng(0x5eed000b);
        spec.memoryImage.resize(
            static_cast<std::size_t>(kConvN + kTaps));
        for (Word &v : spec.memoryImage)
            v = static_cast<Word>(rng.nextRange(-128, 127));
        std::vector<Word> ys(static_cast<std::size_t>(kConvN));
        for (int i = 0; i < kConvN; ++i) {
            Word acc = 0;
            for (int t = 0; t < kTaps; ++t)
                acc += spec.memoryImage[static_cast<std::size_t>(
                           i + t)] *
                       (3 + t);
            ys[static_cast<std::size_t>(i)] = acc;
        }
        spec.observePorts = {"y"};
        spec.expectedOutputs = {ys};
        spec.expectedMemory = {{"y", y_base, ys}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed000b);
        std::vector<Word> x(
            static_cast<std::size_t>(kConvN + kTaps));
        for (Word &v : x)
            v = static_cast<Word>(rng.nextRange(-128, 127));
        std::uint64_t sum = 0;
        rec.block(bInit);
        rec.round(bLoop);
        for (int i = 0; i < kConvN; ++i) {
            rec.iteration(bLoop);
            rec.block(bBody);
            Word acc = 0;
            for (int t = 0; t < kTaps; ++t)
                acc += x[static_cast<std::size_t>(i + t)] *
                       (3 + t);
            sum = sum * 31 +
                  static_cast<std::uint64_t>(
                      static_cast<UWord>(acc));
        }
        rec.block(bDone);
        return sum;
    }
};

// ---------------------------------------------------------------
// Sigmoid: 2048 activations through the nonlinear-fitting unit.
// ---------------------------------------------------------------

constexpr int kSigN = 2048;

class SigmoidWorkload : public SingleLoopWorkload
{
  public:
    std::string name() const override { return "SI"; }
    std::string fullName() const override { return "Sigmoid"; }
    std::string sizeDesc() const override { return "2048"; }

    Cdfg
    buildCdfg() const override
    {
        return scaffold("sigmoid", [](Dfg &d) {
            int i = d.addInput("i");
            NodeId x = d.addNode(Opcode::Load, Operand::input(i));
            NodeId y = d.addNode(Opcode::SigmoidFix,
                                 Operand::node(x));
            d.addNode(Opcode::Store, Operand::input(i),
                      Operand::node(y), Operand::none(), "y");
            d.addOutput("y", y);
        });
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["loop"] = {0, kSigN, 1};
        spec.inductionPorts["loop"] = "i";
        spec.arrayBases["y"] = kSigN;
        Rng rng(0x5eed000c);
        spec.memoryImage.resize(static_cast<std::size_t>(kSigN));
        std::vector<Word> ys(static_cast<std::size_t>(kSigN));
        for (int i = 0; i < kSigN; ++i) {
            Word x = static_cast<Word>(
                rng.nextRange(-6 << 16, 6 << 16));
            spec.memoryImage[static_cast<std::size_t>(i)] = x;
            ys[static_cast<std::size_t>(i)] =
                evalOp(Opcode::SigmoidFix, x);
        }
        spec.observePorts = {"y"};
        spec.expectedOutputs = {ys};
        spec.expectedMemory = {{"y", kSigN, ys}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed000c);
        std::uint64_t sum = 0;
        rec.block(bInit);
        rec.round(bLoop);
        for (int i = 0; i < kSigN; ++i) {
            rec.iteration(bLoop);
            rec.block(bBody);
            Word x = static_cast<Word>(
                rng.nextRange(-6 << 16, 6 << 16));
            Word y = evalOp(Opcode::SigmoidFix, x);
            sum = sum * 31 +
                  static_cast<std::uint64_t>(static_cast<UWord>(y));
        }
        rec.block(bDone);
        return sum;
    }
};

// ---------------------------------------------------------------
// Gray Processing: 16384 RGB pixels to luma.
// ---------------------------------------------------------------

constexpr int kGrayN = 16384;

class GrayWorkload : public SingleLoopWorkload
{
  public:
    std::string name() const override { return "GP"; }
    std::string fullName() const override
    { return "Gray Processing"; }
    std::string sizeDesc() const override { return "16384"; }

    Cdfg
    buildCdfg() const override
    {
        return scaffold("gray", [](Dfg &d) {
            int i = d.addInput("i");
            NodeId base = d.addNode(Opcode::Mul, Operand::input(i),
                                    Operand::imm(3));
            NodeId r = d.addNode(Opcode::Load, Operand::node(base));
            NodeId gi = d.addNode(Opcode::Add, Operand::node(base),
                                  Operand::imm(1));
            NodeId g = d.addNode(Opcode::Load, Operand::node(gi));
            NodeId bi = d.addNode(Opcode::Add, Operand::node(base),
                                  Operand::imm(2));
            NodeId bb2 = d.addNode(Opcode::Load, Operand::node(bi));
            NodeId acc = d.addNode(Opcode::Mul, Operand::node(r),
                                   Operand::imm(77));
            NodeId acc2 = d.addNode(Opcode::Mac, Operand::node(g),
                                    Operand::imm(150),
                                    Operand::node(acc));
            NodeId acc3 = d.addNode(Opcode::Mac, Operand::node(bb2),
                                    Operand::imm(29),
                                    Operand::node(acc2));
            NodeId y = d.addNode(Opcode::Shr, Operand::node(acc3),
                                 Operand::imm(8));
            d.addNode(Opcode::Store, Operand::input(i),
                      Operand::node(y), Operand::none(), "y");
            d.addOutput("y", y);
        });
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["loop"] = {0, kGrayN, 1};
        spec.inductionPorts["loop"] = "i";
        const Word y_base = 3 * kGrayN;
        spec.arrayBases["y"] = y_base;
        Rng rng(0x5eed000d);
        spec.memoryImage.resize(
            static_cast<std::size_t>(3 * kGrayN));
        std::vector<Word> ys(static_cast<std::size_t>(kGrayN));
        for (int i = 0; i < kGrayN; ++i) {
            Word r = static_cast<Word>(rng.nextBounded(256));
            Word g = static_cast<Word>(rng.nextBounded(256));
            Word b = static_cast<Word>(rng.nextBounded(256));
            spec.memoryImage[static_cast<std::size_t>(3 * i)] = r;
            spec.memoryImage[static_cast<std::size_t>(3 * i + 1)] =
                g;
            spec.memoryImage[static_cast<std::size_t>(3 * i + 2)] =
                b;
            ys[static_cast<std::size_t>(i)] =
                (r * 77 + g * 150 + b * 29) >> 8;
        }
        spec.observePorts = {"y"};
        spec.expectedOutputs = {ys};
        spec.expectedMemory = {{"y", y_base, ys}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed000d);
        std::uint64_t sum = 0;
        rec.block(bInit);
        rec.round(bLoop);
        for (int i = 0; i < kGrayN; ++i) {
            rec.iteration(bLoop);
            rec.block(bBody);
            Word r = static_cast<Word>(rng.nextBounded(256));
            Word g = static_cast<Word>(rng.nextBounded(256));
            Word b = static_cast<Word>(rng.nextBounded(256));
            Word y = (r * 77 + g * 150 + b * 29) >> 8;
            sum = sum * 31 +
                  static_cast<std::uint64_t>(static_cast<UWord>(y));
        }
        rec.block(bDone);
        return sum;
    }
};

} // namespace

const Workload &
conv1dWorkload()
{
    static Conv1dWorkload instance;
    return instance;
}

const Workload &
sigmoidWorkload()
{
    static SigmoidWorkload instance;
    return instance;
}

const Workload &
grayWorkload()
{
    static GrayWorkload instance;
    return instance;
}

} // namespace marionette
