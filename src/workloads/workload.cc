#include "workloads/workload.h"

#include "workloads/kernels.h"

namespace marionette
{

WorkloadProfile
Workload::profile() const
{
    WorkloadProfile p;
    p.name = name();
    p.sizeDesc = sizeDesc();
    p.cdfg = buildCdfg();
    p.loops = LoopInfo::analyze(p.cdfg);
    KernelRecorder rec;
    runGolden(rec);
    p.trace = rec.trace();
    p.loopRounds = rec.allRounds();
    p.loopIterations = rec.allIterations();
    p.controlFlow = analyzeControlFlow(p.cdfg, p.loops);
    p.intensive = intensiveControlFlow();
    return p;
}

const std::vector<const Workload *> &
allWorkloads()
{
    static const std::vector<const Workload *> registry = {
        &mergeSortWorkload(), &fftWorkload(),     &viterbiWorkload(),
        &nwWorkload(),        &houghWorkload(),   &crcWorkload(),
        &adpcmWorkload(),     &scDecodeWorkload(), &ldpcWorkload(),
        &gemmWorkload(),      &conv1dWorkload(),  &sigmoidWorkload(),
        &grayWorkload(),
    };
    return registry;
}

const Workload *
findWorkload(const std::string &name)
{
    // Indexed by both abbreviation and full name; built once.
    static const std::map<std::string, const Workload *> index = [] {
        std::map<std::string, const Workload *> m;
        for (const Workload *w : allWorkloads()) {
            m.emplace(w->name(), w);
            m.emplace(w->fullName(), w);
        }
        return m;
    }();
    auto it = index.find(name);
    return it == index.end() ? nullptr : it->second;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    names.reserve(allWorkloads().size());
    for (const Workload *w : allWorkloads())
        names.push_back(w->name());
    return names;
}

} // namespace marionette
