#include "workloads/workload.h"

#include "workloads/kernels.h"

namespace marionette
{

WorkloadProfile
Workload::profile() const
{
    WorkloadProfile p;
    p.name = name();
    p.sizeDesc = sizeDesc();
    p.cdfg = buildCdfg();
    p.loops = LoopInfo::analyze(p.cdfg);
    KernelRecorder rec;
    runGolden(rec);
    p.trace = rec.trace();
    p.loopRounds = rec.allRounds();
    p.loopIterations = rec.allIterations();
    p.controlFlow = analyzeControlFlow(p.cdfg, p.loops);
    p.intensive = intensiveControlFlow();
    return p;
}

const std::vector<const Workload *> &
allWorkloads()
{
    static const std::vector<const Workload *> registry = {
        &mergeSortWorkload(), &fftWorkload(),     &viterbiWorkload(),
        &nwWorkload(),        &houghWorkload(),   &crcWorkload(),
        &adpcmWorkload(),     &scDecodeWorkload(), &ldpcWorkload(),
        &gemmWorkload(),      &conv1dWorkload(),  &sigmoidWorkload(),
        &grayWorkload(),
    };
    return registry;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload *w : allWorkloads())
        if (w->name() == name || w->fullName() == name)
            return w;
    return nullptr;
}

} // namespace marionette
