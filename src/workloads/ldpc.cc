/**
 * @file
 * LDPC decoding (LDPC) — 20 iterations, 128-bit code
 * (Richardson & Urbanke-style min-sum).
 *
 * Regular (3,6) code: 64 checks of degree 6, 128 variables of
 * degree 3.  Each iteration runs the check-node loop (with the
 * nested two-level min-tracking branch in its innermost scan) and
 * then the variable-node loop — serial loops.  Table 1: nested
 * branches innermost, imperfect nested, serial loops.
 */

#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kVars = 128;
constexpr int kChecks = 64;
constexpr int kCheckDeg = 6;
constexpr int kVarDeg = 3;
constexpr int kIters = 20;

enum Block : BlockId
{
    bInit = 0,
    bIterLoop,   // decoding iterations (depth 1)
    bCheckLoop,  // check nodes (depth 2)
    bScanLoop,   // scan check's edges for min1/min2 (depth 3)
    bLoadAbs,    // load LLR, abs, sign
    bMin1If,     // if (mag < min1)
    bMin1Upd,
    bMin2If,     // else if (mag < min2)
    bMin2Upd,
    bMinSkip,
    bScanLatch,
    bWriteLoop,  // write check messages (depth 3, serial)
    bWriteBody,
    bCheckLatch,
    bVarLoop,    // variable nodes (depth 2, serial to check loop)
    bVarBody,    // sum channel + messages
    bIterLatch,
    bDone
};

class LdpcWorkload : public Workload
{
  public:
    std::string name() const override { return "LDPC"; }
    std::string fullName() const override
    { return "LDPC Decode"; }
    std::string sizeDesc() const override
    { return "20 iters; 128 code length"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("ldpc");
        BlockId init = b.addBlock("init");
        BlockId iter = b.addLoopHeader("iter_loop");
        BlockId check = b.addLoopHeader("check_loop");
        BlockId scan = b.addLoopHeader("scan_loop");
        BlockId loadabs = b.addBlock("load_abs");
        BlockId min1if = b.addBranchBlock("min1_if");
        BlockId min1upd = b.addBlock("min1_upd");
        BlockId min2if = b.addBranchBlock("min2_if");
        BlockId min2upd = b.addBlock("min2_upd");
        BlockId minskip = b.addBlock("min_skip");
        BlockId scanlatch = b.addBlock("scan_latch");
        BlockId wloop = b.addLoopHeader("write_loop");
        BlockId wbody = b.addBlock("write_body");
        BlockId clatch = b.addBlock("check_latch");
        BlockId vloop = b.addLoopHeader("var_loop");
        BlockId vbody = b.addBlock("var_body");
        BlockId ilatch = b.addBlock("iter_latch");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("it", c);
        }
        for (BlockId hdr : {iter, check, scan, wloop, vloop}) {
            Dfg &d = b.dfg(hdr);
            dfg_patterns::addCountedLoop(d, 0, 1, "bound");
        }
        {
            Dfg &d = b.dfg(loadabs);
            int e = d.addInput("edge");
            NodeId v = d.addNode(Opcode::Load, Operand::input(e),
                                 Operand::none(), Operand::none(),
                                 "msg");
            NodeId mag = d.addNode(Opcode::Abs, Operand::node(v));
            NodeId sgn = d.addNode(Opcode::CmpLt, Operand::node(v),
                                   Operand::imm(0));
            d.addOutput("mag", mag);
            d.addOutput("sign", sgn);
        }
        auto cmpBranch = [&](BlockId id, const char *x,
                             const char *y) {
            Dfg &d = b.dfg(id);
            int xi = d.addInput(x);
            int yi = d.addInput(y);
            NodeId lt = d.addNode(Opcode::CmpLt, Operand::input(xi),
                                  Operand::input(yi));
            d.addNode(Opcode::Branch, Operand::node(lt));
            d.addOutput("lt", lt);
        };
        cmpBranch(min1if, "mag", "min1");
        {   // min2 = min1; min1 = mag; arg = e.
            Dfg &d = b.dfg(min1upd);
            int mag = d.addInput("mag");
            int min1 = d.addInput("min1");
            NodeId nmin2 = d.addNode(Opcode::Copy,
                                     Operand::input(min1));
            NodeId nmin1 = d.addNode(Opcode::Copy,
                                     Operand::input(mag));
            d.addOutput("min2", nmin2);
            d.addOutput("min1", nmin1);
        }
        cmpBranch(min2if, "mag", "min2");
        {
            Dfg &d = b.dfg(min2upd);
            int mag = d.addInput("mag");
            NodeId nmin2 = d.addNode(Opcode::Copy,
                                     Operand::input(mag));
            d.addOutput("min2", nmin2);
        }
        copyBlock(minskip);
        copyBlock(scanlatch);
        {   // write: msg = (e == arg ? min2 : min1) * sign.
            Dfg &d = b.dfg(wbody);
            int e = d.addInput("edge");
            int min1 = d.addInput("min1");
            int min2 = d.addInput("min2");
            int arg = d.addInput("arg");
            NodeId eq = d.addNode(Opcode::CmpEq, Operand::input(e),
                                  Operand::input(arg));
            NodeId mag = d.addNode(Opcode::Select,
                                   Operand::node(eq),
                                   Operand::input(min2),
                                   Operand::input(min1));
            NodeId neg = d.addNode(Opcode::Neg, Operand::node(mag));
            NodeId sel = d.addNode(Opcode::Select,
                                   Operand::input(e),
                                   Operand::node(neg),
                                   Operand::node(mag));
            d.addNode(Opcode::Store, Operand::input(e),
                      Operand::node(sel));
            d.addOutput("msg", sel);
        }
        {   // per-check finalize: fold the sign product into the
            // syndrome word (imperfect work at the check level).
            Dfg &d = b.dfg(clatch);
            int sign = d.addInput("sign_prod");
            int syn = d.addInput("syndrome");
            NodeId bit = d.addNode(Opcode::And,
                                   Operand::input(sign),
                                   Operand::imm(1));
            NodeId nx = d.addNode(Opcode::Xor,
                                  Operand::input(syn),
                                  Operand::node(bit));
            d.addOutput("syndrome", nx);
        }
        {   // variable node: llr = channel + sum of check msgs.
            Dfg &d = b.dfg(vbody);
            int v = d.addInput("var");
            NodeId ch = d.addNode(Opcode::Load, Operand::input(v),
                                  Operand::none(), Operand::none(),
                                  "channel");
            NodeId m0 = d.addNode(Opcode::Load, Operand::input(v));
            NodeId m1 = d.addNode(Opcode::Load, Operand::input(v));
            NodeId m2 = d.addNode(Opcode::Load, Operand::input(v));
            NodeId s0 = d.addNode(Opcode::Add, Operand::node(ch),
                                  Operand::node(m0));
            NodeId s1 = d.addNode(Opcode::Add, Operand::node(s0),
                                  Operand::node(m1));
            NodeId s2 = d.addNode(Opcode::Add, Operand::node(s1),
                                  Operand::node(m2));
            d.addNode(Opcode::Store, Operand::input(v),
                      Operand::node(s2));
            d.addOutput("llr", s2);
        }
        copyBlock(ilatch);
        copyBlock(done);

        b.fall(init, iter);
        b.fall(iter, check);
        b.fall(check, scan);
        b.fall(scan, loadabs);
        b.fall(loadabs, min1if);
        b.branch(min1if, min1upd, min2if);
        b.branch(min2if, min2upd, minskip);
        b.fall(min1upd, scanlatch);
        b.fall(min2upd, scanlatch);
        b.fall(minskip, scanlatch);
        b.loopBack(scanlatch, scan);
        b.loopExit(scan, wloop);
        b.fall(wloop, wbody);
        b.loopBack(wbody, wloop);
        b.loopExit(wloop, clatch);
        b.loopBack(clatch, check);
        b.loopExit(check, vloop);
        b.fall(vloop, vbody);
        b.loopBack(vbody, vloop);
        b.loopExit(vloop, ilatch);
        b.loopBack(ilatch, iter);
        b.loopExit(iter, done);
        return b.finish();
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0009);
        // Regular (3,6) H matrix: check c connects to variables
        // (c*2 + k*perm) mod kVars — a structured construction
        // with full rank properties adequate for decoding work.
        std::vector<std::vector<int>> check_vars(
            static_cast<std::size_t>(kChecks));
        for (int c = 0; c < kChecks; ++c) {
            for (int k = 0; k < kCheckDeg; ++k) {
                int v = (c * 2 + k * 21 + (k * k * 7) % kVars) %
                        kVars;
                check_vars[static_cast<std::size_t>(c)].push_back(
                    v);
            }
        }

        std::vector<Word> channel(static_cast<std::size_t>(kVars));
        for (Word &v : channel)
            v = static_cast<Word>(rng.nextRange(-15, 25));

        // Messages per (check, edge).
        std::vector<std::vector<Word>> msg(
            static_cast<std::size_t>(kChecks),
            std::vector<Word>(static_cast<std::size_t>(kCheckDeg),
                              0));
        std::vector<Word> llr = channel;

        rec.block(bInit);
        rec.round(bIterLoop);
        for (int it = 0; it < kIters; ++it) {
            rec.iteration(bIterLoop);
            rec.round(bCheckLoop);
            for (int c = 0; c < kChecks; ++c) {
                rec.iteration(bCheckLoop);
                Word min1 = 0x7fffffff, min2 = 0x7fffffff;
                int arg = -1;
                Word sign_prod = 0;
                rec.round(bScanLoop);
                for (int k = 0; k < kCheckDeg; ++k) {
                    rec.iteration(bScanLoop);
                    rec.block(bLoadAbs);
                    int v = check_vars[static_cast<std::size_t>(
                        c)][static_cast<std::size_t>(k)];
                    Word ext =
                        llr[static_cast<std::size_t>(v)] -
                        msg[static_cast<std::size_t>(c)]
                           [static_cast<std::size_t>(k)];
                    Word mag = ext < 0 ? -ext : ext;
                    sign_prod ^= ext < 0 ? 1 : 0;
                    rec.block(bMin1If);
                    if (mag < min1) {
                        rec.block(bMin1Upd);
                        min2 = min1;
                        min1 = mag;
                        arg = k;
                    } else {
                        rec.block(bMin2If);
                        if (mag < min2) {
                            rec.block(bMin2Upd);
                            min2 = mag;
                        } else {
                            rec.block(bMinSkip);
                        }
                    }
                    rec.block(bScanLatch);
                }
                rec.round(bWriteLoop);
                for (int k = 0; k < kCheckDeg; ++k) {
                    rec.iteration(bWriteLoop);
                    rec.block(bWriteBody);
                    int v = check_vars[static_cast<std::size_t>(
                        c)][static_cast<std::size_t>(k)];
                    Word ext =
                        llr[static_cast<std::size_t>(v)] -
                        msg[static_cast<std::size_t>(c)]
                           [static_cast<std::size_t>(k)];
                    Word mag = k == arg ? min2 : min1;
                    // Attenuated min-sum (3/4 scaling).
                    mag = (mag * 3) >> 2;
                    Word s = (sign_prod ^ (ext < 0 ? 1 : 0)) ? -1
                                                             : 1;
                    msg[static_cast<std::size_t>(c)]
                       [static_cast<std::size_t>(k)] = s * mag;
                }
                rec.block(bCheckLatch);
            }
            // Variable update: llr = channel + sum of messages.
            std::vector<Word> next = channel;
            for (int c = 0; c < kChecks; ++c)
                for (int k = 0; k < kCheckDeg; ++k)
                    next[static_cast<std::size_t>(
                        check_vars[static_cast<std::size_t>(c)]
                                  [static_cast<std::size_t>(
                                      k)])] +=
                        msg[static_cast<std::size_t>(c)]
                           [static_cast<std::size_t>(k)];
            rec.round(bVarLoop);
            for (int v = 0; v < kVars; ++v) {
                rec.iteration(bVarLoop);
                rec.block(bVarBody);
                llr[static_cast<std::size_t>(v)] =
                    next[static_cast<std::size_t>(v)];
            }
            rec.block(bIterLatch);
        }
        rec.block(bDone);

        std::uint64_t sum = 0;
        for (int v = 0; v < kVars; ++v)
            sum = sum * 3 +
                  (llr[static_cast<std::size_t>(v)] < 0 ? 1 : 0);
        return sum;
    }

    // Note: the full LDPC application of Fig. 17 combines this
    // intensive kernel with non-intensive front-end processing;
    // bench_fig17 composes it from LDPC + GP cycles.
};

} // namespace

const Workload &
ldpcWorkload()
{
    static LdpcWorkload instance;
    return instance;
}

} // namespace marionette
