/**
 * @file
 * LDPC decoding (LDPC) — 20 iterations, 128-bit code
 * (Richardson & Urbanke-style min-sum).
 *
 * Regular (3,6) code: 64 checks of degree 6, 128 variables of
 * degree 3.  Each iteration runs the check-node loop (with the
 * nested two-level min-tracking branch in its innermost scan) and
 * then the variable-node loop — serial loops.  Table 1: nested
 * branches innermost, imperfect nested, serial loops.
 */

#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kVars = 128;
constexpr int kChecks = 64;
constexpr int kCheckDeg = 6;
constexpr int kVarDeg = 3;
constexpr int kIters = 20;

enum Block : BlockId
{
    bInit = 0,
    bIterLoop,   // decoding iterations (depth 1)
    bCheckLoop,  // check nodes (depth 2)
    bScanLoop,   // scan check's edges for min1/min2 (depth 3)
    bLoadAbs,    // load LLR, abs, sign
    bMin1If,     // if (mag < min1)
    bMin1Upd,
    bMin2If,     // else if (mag < min2)
    bMin2Upd,
    bMinSkip,
    bScanLatch,
    bWriteLoop,  // write check messages (depth 3, serial)
    bWriteBody,
    bCheckLatch,
    bVarLoop,    // variable nodes (depth 2, serial to check loop)
    bVarBody,    // sum channel + messages
    bIterLatch,
    bDone
};

class LdpcWorkload : public Workload
{
  public:
    std::string name() const override { return "LDPC"; }
    std::string fullName() const override
    { return "LDPC Decode"; }
    std::string sizeDesc() const override
    { return "20 iters; 128 code length"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("ldpc");
        BlockId init = b.addBlock("init");
        BlockId iter = b.addLoopHeader("iter_loop");
        BlockId check = b.addLoopHeader("check_loop");
        BlockId scan = b.addLoopHeader("scan_loop");
        BlockId loadabs = b.addBlock("load_abs");
        BlockId min1if = b.addBranchBlock("min1_if");
        BlockId min1upd = b.addBlock("min1_upd");
        BlockId min2if = b.addBranchBlock("min2_if");
        BlockId min2upd = b.addBlock("min2_upd");
        BlockId minskip = b.addBlock("min_skip");
        BlockId scanlatch = b.addBlock("scan_latch");
        BlockId wloop = b.addLoopHeader("write_loop");
        BlockId wbody = b.addBlock("write_body");
        BlockId clatch = b.addBlock("check_latch");
        BlockId vloop = b.addLoopHeader("var_loop");
        BlockId vbody = b.addBlock("var_body");
        BlockId ilatch = b.addBlock("iter_latch");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("it", c);
        }
        for (BlockId hdr : {iter, check, scan, wloop, vloop}) {
            Dfg &d = b.dfg(hdr);
            dfg_patterns::addCountedLoop(d, 0, 1, "bound");
        }
        {   // extrinsic = llr[v] - msg[e] for edge e = c*6+k of the
            // regular H matrix v = e mod 128; the loads are fenced
            // on the msg/llr store chains (carried store tokens) so
            // the flattened pipeline respects memory order.
            Dfg &d = b.dfg(loadabs);
            int c = d.addInput("c");
            int k = d.addInput("k");
            int lw = d.addInput("llrw");
            int mw = d.addInput("msgw");
            NodeId c6 = d.addNode(Opcode::Mul, Operand::input(c),
                                  Operand::imm(6));
            NodeId e = d.addNode(Opcode::Add, Operand::node(c6),
                                 Operand::input(k));
            NodeId v = d.addNode(Opcode::And, Operand::node(e),
                                 Operand::imm(127));
            NodeId fs = d.addNode(Opcode::Add, Operand::input(lw),
                                  Operand::input(mw));
            NodeId z = d.addNode(Opcode::And, Operand::node(fs),
                                 Operand::imm(0), Operand::none(),
                                 "fence");
            NodeId la = d.addNode(Opcode::Add, Operand::node(v),
                                  Operand::node(z));
            NodeId lv = d.addNode(Opcode::Load, Operand::node(la),
                                  Operand::none(), Operand::none(),
                                  "llr");
            NodeId ma = d.addNode(Opcode::Add, Operand::node(e),
                                  Operand::node(z));
            NodeId mv = d.addNode(Opcode::Load, Operand::node(ma),
                                  Operand::none(), Operand::none(),
                                  "msg");
            NodeId ext = d.addNode(Opcode::Sub, Operand::node(lv),
                                   Operand::node(mv));
            NodeId mag = d.addNode(Opcode::Abs, Operand::node(ext));
            NodeId sgn = d.addNode(Opcode::CmpLt,
                                   Operand::node(ext),
                                   Operand::imm(0));
            int sp = d.addInput("sign_prod");
            NodeId spx = d.addNode(Opcode::Xor, Operand::input(sp),
                                   Operand::node(sgn));
            d.addOutput("mag", mag);
            d.addOutput("sign_prod", spx);
        }
        {   // if (mag < min1); the running arg-min rides along so
            // the not-taken path keeps it.
            Dfg &d = b.dfg(min1if);
            int mag = d.addInput("mag");
            int min1 = d.addInput("min1");
            int arg = d.addInput("arg");
            NodeId lt = d.addNode(Opcode::CmpLt,
                                  Operand::input(mag),
                                  Operand::input(min1));
            d.addNode(Opcode::Branch, Operand::node(lt));
            NodeId ac = d.addNode(Opcode::Copy,
                                  Operand::input(arg));
            d.addOutput("lt", lt);
            d.addOutput("arg", ac);
        }
        {   // min2 = min1; min1 = mag; arg = k.
            Dfg &d = b.dfg(min1upd);
            int mag = d.addInput("mag");
            int min1 = d.addInput("min1");
            int k = d.addInput("k");
            NodeId nmin2 = d.addNode(Opcode::Copy,
                                     Operand::input(min1));
            NodeId nmin1 = d.addNode(Opcode::Copy,
                                     Operand::input(mag));
            NodeId narg = d.addNode(Opcode::Copy,
                                    Operand::input(k));
            d.addOutput("min2", nmin2);
            d.addOutput("min1", nmin1);
            d.addOutput("arg", narg);
        }
        {   // else if (mag < min2).
            Dfg &d = b.dfg(min2if);
            int mag = d.addInput("mag");
            int min2 = d.addInput("min2");
            NodeId lt = d.addNode(Opcode::CmpLt,
                                  Operand::input(mag),
                                  Operand::input(min2));
            d.addNode(Opcode::Branch, Operand::node(lt));
            d.addOutput("lt", lt);
        }
        {
            Dfg &d = b.dfg(min2upd);
            int mag = d.addInput("mag");
            NodeId nmin2 = d.addNode(Opcode::Copy,
                                     Operand::input(mag));
            d.addOutput("min2", nmin2);
        }
        copyBlock(minskip);
        copyBlock(scanlatch);
        {   // write: msg[e] = +/- attenuated (k == arg ? min2 :
            // min1), sign = sign_prod ^ sign(ext).
            Dfg &d = b.dfg(wbody);
            int c = d.addInput("c");
            int kw = d.addInput("kw");
            int min1 = d.addInput("min1");
            int min2 = d.addInput("min2");
            int arg = d.addInput("arg");
            int sp = d.addInput("sign_prod");
            int lw = d.addInput("llrw");
            int mw = d.addInput("msgw");
            NodeId c6 = d.addNode(Opcode::Mul, Operand::input(c),
                                  Operand::imm(6));
            NodeId e = d.addNode(Opcode::Add, Operand::node(c6),
                                 Operand::input(kw));
            NodeId v = d.addNode(Opcode::And, Operand::node(e),
                                 Operand::imm(127));
            NodeId fs = d.addNode(Opcode::Add, Operand::input(lw),
                                  Operand::input(mw));
            NodeId z = d.addNode(Opcode::And, Operand::node(fs),
                                 Operand::imm(0), Operand::none(),
                                 "fence");
            NodeId la = d.addNode(Opcode::Add, Operand::node(v),
                                  Operand::node(z));
            NodeId lv = d.addNode(Opcode::Load, Operand::node(la),
                                  Operand::none(), Operand::none(),
                                  "llr");
            NodeId ma = d.addNode(Opcode::Add, Operand::node(e),
                                  Operand::node(z));
            NodeId mv = d.addNode(Opcode::Load, Operand::node(ma),
                                  Operand::none(), Operand::none(),
                                  "msg");
            NodeId ext = d.addNode(Opcode::Sub, Operand::node(lv),
                                   Operand::node(mv));
            NodeId sgn = d.addNode(Opcode::CmpLt,
                                   Operand::node(ext),
                                   Operand::imm(0));
            NodeId eq = d.addNode(Opcode::CmpEq,
                                  Operand::input(kw),
                                  Operand::input(arg));
            NodeId mag = d.addNode(Opcode::Select,
                                   Operand::node(eq),
                                   Operand::input(min2),
                                   Operand::input(min1));
            NodeId m3 = d.addNode(Opcode::Mul, Operand::node(mag),
                                  Operand::imm(3));
            NodeId att = d.addNode(Opcode::Sra, Operand::node(m3),
                                   Operand::imm(2));
            NodeId sf = d.addNode(Opcode::Xor, Operand::input(sp),
                                  Operand::node(sgn));
            NodeId neg = d.addNode(Opcode::Neg, Operand::node(att));
            NodeId sel = d.addNode(Opcode::Select,
                                   Operand::node(sf),
                                   Operand::node(neg),
                                   Operand::node(att));
            NodeId st = d.addNode(Opcode::Store, Operand::node(e),
                                  Operand::node(sel),
                                  Operand::none(), "msg");
            d.addOutput("msgw", st);
        }
        {   // per-check finalize: fold the sign product into the
            // syndrome word (imperfect work at the check level).
            Dfg &d = b.dfg(clatch);
            int sign = d.addInput("sign_prod");
            int syn = d.addInput("syndrome");
            NodeId bit = d.addNode(Opcode::And,
                                   Operand::input(sign),
                                   Operand::imm(1));
            NodeId nx = d.addNode(Opcode::Xor,
                                  Operand::input(syn),
                                  Operand::node(bit));
            d.addOutput("syndrome", nx);
        }
        {   // variable node: llr[v] = channel[v] + the three check
            // messages of the regular H matrix (edges v, v+128,
            // v+256), fenced on the msg store chain.
            Dfg &d = b.dfg(vbody);
            int v = d.addInput("var");
            int mw = d.addInput("msgw");
            NodeId z = d.addNode(Opcode::And, Operand::input(mw),
                                 Operand::imm(0), Operand::none(),
                                 "fence");
            NodeId a0 = d.addNode(Opcode::Add, Operand::input(v),
                                  Operand::node(z));
            NodeId ch = d.addNode(Opcode::Load, Operand::node(a0),
                                  Operand::none(), Operand::none(),
                                  "channel");
            NodeId m0 = d.addNode(Opcode::Load, Operand::node(a0),
                                  Operand::none(), Operand::none(),
                                  "msg");
            NodeId a1 = d.addNode(Opcode::Add, Operand::node(a0),
                                  Operand::imm(128));
            NodeId m1 = d.addNode(Opcode::Load, Operand::node(a1),
                                  Operand::none(), Operand::none(),
                                  "msg");
            NodeId a2 = d.addNode(Opcode::Add, Operand::node(a1),
                                  Operand::imm(128));
            NodeId m2 = d.addNode(Opcode::Load, Operand::node(a2),
                                  Operand::none(), Operand::none(),
                                  "msg");
            NodeId s0 = d.addNode(Opcode::Add, Operand::node(ch),
                                  Operand::node(m0));
            NodeId s1 = d.addNode(Opcode::Add, Operand::node(s0),
                                  Operand::node(m1));
            NodeId s2 = d.addNode(Opcode::Add, Operand::node(s1),
                                  Operand::node(m2));
            NodeId st = d.addNode(Opcode::Store, Operand::input(v),
                                  Operand::node(s2),
                                  Operand::none(), "llr");
            d.addOutput("llr", s2);
            d.addOutput("llrw", st);
        }
        copyBlock(ilatch);
        copyBlock(done);

        b.fall(init, iter);
        b.fall(iter, check);
        b.fall(check, scan);
        b.fall(scan, loadabs);
        b.fall(loadabs, min1if);
        b.branch(min1if, min1upd, min2if);
        b.branch(min2if, min2upd, minskip);
        b.fall(min1upd, scanlatch);
        b.fall(min2upd, scanlatch);
        b.fall(minskip, scanlatch);
        b.loopBack(scanlatch, scan);
        b.loopExit(scan, wloop);
        b.fall(wloop, wbody);
        b.loopBack(wbody, wloop);
        b.loopExit(wloop, clatch);
        b.loopBack(clatch, check);
        b.loopExit(check, vloop);
        b.fall(vloop, vbody);
        b.loopBack(vbody, vloop);
        b.loopExit(vloop, ilatch);
        b.loopBack(ilatch, iter);
        b.loopExit(iter, done);
        return b.finish();
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        // Machine-run data over a *regular* (3,6) H matrix
        // (edge e -> variable e mod 128): check c owns edges
        // c*6..c*6+5, variable v owns edges v, v+128, v+256.
        constexpr Word base_llr = 0;       // 128
        constexpr Word base_ch = 128;      // 128
        constexpr Word base_msg = 256;     // 384

        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["iter_loop"] = {0, kIters, 1};
        spec.loopBounds["check_loop"] = {0, kChecks, 1};
        spec.loopBounds["scan_loop"] = {0, kCheckDeg, 1};
        spec.loopBounds["write_loop"] = {0, kCheckDeg, 1};
        spec.loopBounds["var_loop"] = {0, kVars, 1};
        spec.inductionPorts["check_loop"] = "c";
        spec.inductionPorts["scan_loop"] = "k";
        spec.inductionPorts["write_loop"] = "kw";
        spec.inductionPorts["var_loop"] = "var";
        spec.arrayBases["llr"] = base_llr;
        spec.arrayBases["channel"] = base_ch;
        spec.arrayBases["msg"] = base_msg;
        // The min tracker re-seeds at every scan-round entry.
        spec.roundResets["scan_loop"] = {{"min1", 0x7fffffff},
                                         {"min2", 0x7fffffff},
                                         {"arg", 0},
                                         {"sign_prod", 0}};
        // Store-chain fences boot from 0.
        spec.scalars["llrw"] = 0;
        spec.scalars["msgw"] = 0;
        // The fence tokens serialize *every* load behind *every*
        // store, but the true dependence distance is much larger:
        // llr[v] and msg[e] are rewritten at least a full 128-slot
        // sweep before any conflicting reload (a check rereads its
        // msg entries only on the next outer iteration; llr updates
        // land a whole check pass before the var pass rereads
        // them).  Lowering may therefore run the fence chain up to
        // this many slots ahead (slack-seeded recurrence).
        spec.fenceMinDistance["llrw"] = 128;
        spec.fenceMinDistance["msgw"] = 128;

        Rng rng(0x5eed0009);
        std::vector<Word> channel(static_cast<std::size_t>(kVars));
        for (Word &v : channel)
            v = static_cast<Word>(rng.nextRange(-15, 25));

        spec.memoryImage.assign(
            static_cast<std::size_t>(base_msg + 3 * kVars), 0);
        for (int v = 0; v < kVars; ++v) {
            spec.memoryImage[static_cast<std::size_t>(v)] =
                channel[static_cast<std::size_t>(v)];
            spec.memoryImage[static_cast<std::size_t>(base_ch +
                                                      v)] =
                channel[static_cast<std::size_t>(v)];
        }

        // Golden attenuated min-sum over the regular H matrix.
        std::vector<Word> llr = channel;
        std::vector<Word> msg(static_cast<std::size_t>(3 * kVars),
                              0);
        for (int it = 0; it < kIters; ++it) {
            for (int c = 0; c < kChecks; ++c) {
                Word min1 = 0x7fffffff, min2 = 0x7fffffff;
                Word arg = 0, sp = 0;
                for (int k = 0; k < kCheckDeg; ++k) {
                    int e = c * kCheckDeg + k;
                    int v = e & (kVars - 1);
                    Word ext =
                        llr[static_cast<std::size_t>(v)] -
                        msg[static_cast<std::size_t>(e)];
                    Word mag = ext < 0 ? -ext : ext;
                    sp ^= ext < 0 ? 1 : 0;
                    if (mag < min1) {
                        min2 = min1;
                        min1 = mag;
                        arg = k;
                    } else if (mag < min2) {
                        min2 = mag;
                    }
                }
                for (int k = 0; k < kCheckDeg; ++k) {
                    int e = c * kCheckDeg + k;
                    int v = e & (kVars - 1);
                    Word ext =
                        llr[static_cast<std::size_t>(v)] -
                        msg[static_cast<std::size_t>(e)];
                    Word mag = k == arg ? min2 : min1;
                    mag = (mag * 3) >> 2;
                    Word s = sp ^ (ext < 0 ? 1 : 0);
                    msg[static_cast<std::size_t>(e)] =
                        s ? -mag : mag;
                }
            }
            for (int v = 0; v < kVars; ++v)
                llr[static_cast<std::size_t>(v)] =
                    channel[static_cast<std::size_t>(v)] +
                    msg[static_cast<std::size_t>(v)] +
                    msg[static_cast<std::size_t>(v + kVars)] +
                    msg[static_cast<std::size_t>(v + 2 * kVars)];
        }

        spec.expectedMemory = {
            {"llr", base_llr, std::move(llr)},
            {"msg", base_msg, std::move(msg)}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0009);
        // Regular (3,6) H matrix: check c connects to variables
        // (c*2 + k*perm) mod kVars — a structured construction
        // with full rank properties adequate for decoding work.
        std::vector<std::vector<int>> check_vars(
            static_cast<std::size_t>(kChecks));
        for (int c = 0; c < kChecks; ++c) {
            for (int k = 0; k < kCheckDeg; ++k) {
                int v = (c * 2 + k * 21 + (k * k * 7) % kVars) %
                        kVars;
                check_vars[static_cast<std::size_t>(c)].push_back(
                    v);
            }
        }

        std::vector<Word> channel(static_cast<std::size_t>(kVars));
        for (Word &v : channel)
            v = static_cast<Word>(rng.nextRange(-15, 25));

        // Messages per (check, edge).
        std::vector<std::vector<Word>> msg(
            static_cast<std::size_t>(kChecks),
            std::vector<Word>(static_cast<std::size_t>(kCheckDeg),
                              0));
        std::vector<Word> llr = channel;

        rec.block(bInit);
        rec.round(bIterLoop);
        for (int it = 0; it < kIters; ++it) {
            rec.iteration(bIterLoop);
            rec.round(bCheckLoop);
            for (int c = 0; c < kChecks; ++c) {
                rec.iteration(bCheckLoop);
                Word min1 = 0x7fffffff, min2 = 0x7fffffff;
                int arg = -1;
                Word sign_prod = 0;
                rec.round(bScanLoop);
                for (int k = 0; k < kCheckDeg; ++k) {
                    rec.iteration(bScanLoop);
                    rec.block(bLoadAbs);
                    int v = check_vars[static_cast<std::size_t>(
                        c)][static_cast<std::size_t>(k)];
                    Word ext =
                        llr[static_cast<std::size_t>(v)] -
                        msg[static_cast<std::size_t>(c)]
                           [static_cast<std::size_t>(k)];
                    Word mag = ext < 0 ? -ext : ext;
                    sign_prod ^= ext < 0 ? 1 : 0;
                    rec.block(bMin1If);
                    if (mag < min1) {
                        rec.block(bMin1Upd);
                        min2 = min1;
                        min1 = mag;
                        arg = k;
                    } else {
                        rec.block(bMin2If);
                        if (mag < min2) {
                            rec.block(bMin2Upd);
                            min2 = mag;
                        } else {
                            rec.block(bMinSkip);
                        }
                    }
                    rec.block(bScanLatch);
                }
                rec.round(bWriteLoop);
                for (int k = 0; k < kCheckDeg; ++k) {
                    rec.iteration(bWriteLoop);
                    rec.block(bWriteBody);
                    int v = check_vars[static_cast<std::size_t>(
                        c)][static_cast<std::size_t>(k)];
                    Word ext =
                        llr[static_cast<std::size_t>(v)] -
                        msg[static_cast<std::size_t>(c)]
                           [static_cast<std::size_t>(k)];
                    Word mag = k == arg ? min2 : min1;
                    // Attenuated min-sum (3/4 scaling).
                    mag = (mag * 3) >> 2;
                    Word s = (sign_prod ^ (ext < 0 ? 1 : 0)) ? -1
                                                             : 1;
                    msg[static_cast<std::size_t>(c)]
                       [static_cast<std::size_t>(k)] = s * mag;
                }
                rec.block(bCheckLatch);
            }
            // Variable update: llr = channel + sum of messages.
            std::vector<Word> next = channel;
            for (int c = 0; c < kChecks; ++c)
                for (int k = 0; k < kCheckDeg; ++k)
                    next[static_cast<std::size_t>(
                        check_vars[static_cast<std::size_t>(c)]
                                  [static_cast<std::size_t>(
                                      k)])] +=
                        msg[static_cast<std::size_t>(c)]
                           [static_cast<std::size_t>(k)];
            rec.round(bVarLoop);
            for (int v = 0; v < kVars; ++v) {
                rec.iteration(bVarLoop);
                rec.block(bVarBody);
                llr[static_cast<std::size_t>(v)] =
                    next[static_cast<std::size_t>(v)];
            }
            rec.block(bIterLatch);
        }
        rec.block(bDone);

        std::uint64_t sum = 0;
        for (int v = 0; v < kVars; ++v)
            sum = sum * 3 +
                  (llr[static_cast<std::size_t>(v)] < 0 ? 1 : 0);
        return sum;
    }

    // Note: the full LDPC application of Fig. 17 combines this
    // intensive kernel with non-intensive front-end processing;
    // bench_fig17 composes it from LDPC + GP cycles.
};

} // namespace

const Workload &
ldpcWorkload()
{
    static LdpcWorkload instance;
    return instance;
}

} // namespace marionette
