/**
 * @file
 * ADPCM Encode — 2000 bytes (MiBench IMA ADPCM).
 *
 * One sample loop whose body is a *chain of serial branches* (sign
 * handling, quantizer threshold, index clamping) — Table 1: serial
 * branches, no nested loops.  The branch chain is the reason TIA-
 * style per-token reconfiguration hurts here (Fig. 16: network-
 * dominated benchmark).
 */

#include <algorithm>
#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kSamples = 2000;

const Word kStepTable[16] = {7,  8,  9,  10, 11,  12,  13,  14,
                             16, 17, 19, 21, 23,  25,  28,  31};
const Word kIndexTable[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

enum Block : BlockId
{
    bInit = 0,
    bSampleLoop, // depth 1
    bPredict,    // diff = sample - predicted
    bSignIf,     // if (diff < 0)
    bNegate,     // diff = -diff, sign = 8
    bKeep,
    bQuant,      // delta = quantize(diff, step)
    bMagIf,      // if (delta >= 4)
    bMagHi,      // index += large step
    bMagLo,
    bClampIf,    // if (index out of range)
    bClampFix,
    bClampOk,
    bUpdate,     // predicted/step update + store nibble
    bDone
};

class AdpcmWorkload : public Workload
{
  public:
    std::string name() const override { return "ADPCM"; }
    std::string fullName() const override
    { return "ADPCM Encode"; }
    std::string sizeDesc() const override { return "2000 bytes"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("adpcm");
        BlockId init = b.addBlock("init");
        BlockId loop = b.addLoopHeader("sample_loop");
        BlockId predict = b.addBlock("predict");
        BlockId signif = b.addBranchBlock("sign_if");
        BlockId neg = b.addBlock("negate");
        BlockId keep = b.addBlock("keep");
        BlockId quant = b.addBlock("quant");
        BlockId magif = b.addBranchBlock("mag_if");
        BlockId maghi = b.addBlock("mag_hi");
        BlockId maglo = b.addBlock("mag_lo");
        BlockId clampif = b.addBranchBlock("clamp_if");
        BlockId clampfix = b.addBlock("clamp_fix");
        BlockId clampok = b.addBlock("clamp_ok");
        BlockId update = b.addBlock("update");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("predicted", c);
        }
        {
            Dfg &d = b.dfg(loop);
            dfg_patterns::addCountedLoop(d, 0, 1, "n");
        }
        {   // step = stepTable[index]; diff = sample - predicted.
            Dfg &d = b.dfg(predict);
            int i = d.addInput("i");
            int pred = d.addInput("predicted");
            int idx = d.addInput("index");
            NodeId st = d.addNode(Opcode::Load, Operand::input(idx),
                                  Operand::none(), Operand::none(),
                                  "stepTable");
            NodeId s = d.addNode(Opcode::Load, Operand::input(i),
                                 Operand::none(), Operand::none(),
                                 "sample");
            NodeId diff = d.addNode(Opcode::Sub, Operand::node(s),
                                    Operand::input(pred));
            d.addOutput("step", st);
            d.addOutput("diff", diff);
        }
        {
            Dfg &d = b.dfg(signif);
            int diff = d.addInput("diff");
            NodeId lt = d.addNode(Opcode::CmpLt,
                                  Operand::input(diff),
                                  Operand::imm(0));
            d.addNode(Opcode::Branch, Operand::node(lt));
            d.addOutput("neg", lt);
        }
        {
            Dfg &d = b.dfg(neg);
            int diff = d.addInput("diff");
            NodeId nd = d.addNode(Opcode::Neg,
                                  Operand::input(diff));
            NodeId sign = d.addNode(Opcode::Const,
                                    Operand::imm(8));
            d.addOutput("diff", nd);
            d.addOutput("sign", sign);
        }
        copyBlock(keep);
        {   // delta = min(diff * 4 / step, 7).
            Dfg &d = b.dfg(quant);
            int diff = d.addInput("diff");
            int step = d.addInput("step");
            NodeId d4 = d.addNode(Opcode::Shl, Operand::input(diff),
                                  Operand::imm(2));
            NodeId q = d.addNode(Opcode::Div, Operand::node(d4),
                                 Operand::input(step));
            NodeId delta = d.addNode(Opcode::Min, Operand::node(q),
                                     Operand::imm(7));
            d.addOutput("delta", delta);
        }
        {
            Dfg &d = b.dfg(magif);
            int delta = d.addInput("delta");
            NodeId ge = d.addNode(Opcode::CmpGe,
                                  Operand::input(delta),
                                  Operand::imm(4));
            d.addNode(Opcode::Branch, Operand::node(ge));
            d.addOutput("hi", ge);
        }
        {
            Dfg &d = b.dfg(maghi);
            int idx = d.addInput("index");
            int delta = d.addInput("delta");
            NodeId adj = d.addNode(Opcode::Load,
                                   Operand::input(delta),
                                   Operand::none(), Operand::none(),
                                   "indexTable");
            NodeId ni = d.addNode(Opcode::Add, Operand::input(idx),
                                  Operand::node(adj));
            d.addOutput("index", ni);
        }
        {
            Dfg &d = b.dfg(maglo);
            int idx = d.addInput("index");
            NodeId ni = d.addNode(Opcode::Sub, Operand::input(idx),
                                  Operand::imm(1));
            d.addOutput("index", ni);
        }
        {
            Dfg &d = b.dfg(clampif);
            int idx = d.addInput("index");
            NodeId lt = d.addNode(Opcode::CmpLt,
                                  Operand::input(idx),
                                  Operand::imm(0));
            NodeId gt = d.addNode(Opcode::CmpGt,
                                  Operand::input(idx),
                                  Operand::imm(15));
            NodeId bad = d.addNode(Opcode::Or, Operand::node(lt),
                                   Operand::node(gt));
            d.addNode(Opcode::Branch, Operand::node(bad));
            d.addOutput("bad", bad);
        }
        {
            Dfg &d = b.dfg(clampfix);
            int idx = d.addInput("index");
            NodeId lo = d.addNode(Opcode::Max, Operand::input(idx),
                                  Operand::imm(0));
            NodeId hi = d.addNode(Opcode::Min, Operand::node(lo),
                                  Operand::imm(15));
            d.addOutput("index", hi);
        }
        copyBlock(clampok);
        {   // predicted += sign ? -vpdiff : vpdiff; store nibble.
            Dfg &d = b.dfg(update);
            int pred = d.addInput("predicted");
            int delta = d.addInput("delta");
            int sign = d.addInput("sign");
            int step = d.addInput("step");
            int i = d.addInput("i");
            NodeId vp = d.addNode(Opcode::Mul, Operand::input(delta),
                                  Operand::input(step));
            NodeId vp2 = d.addNode(Opcode::Sra, Operand::node(vp),
                                   Operand::imm(2));
            NodeId nvp = d.addNode(Opcode::Neg, Operand::node(vp2));
            NodeId adj = d.addNode(Opcode::Select,
                                   Operand::input(sign),
                                   Operand::node(nvp),
                                   Operand::node(vp2));
            NodeId np = d.addNode(Opcode::Add, Operand::input(pred),
                                  Operand::node(adj));
            NodeId nib = d.addNode(Opcode::Or, Operand::input(sign),
                                   Operand::input(delta));
            d.addNode(Opcode::Store, Operand::input(i),
                      Operand::node(nib), Operand::none(),
                      "nibble");
            d.addOutput("predicted", np);
        }
        copyBlock(done);

        b.fall(init, loop);
        b.fall(loop, predict);
        b.fall(predict, signif);
        b.branch(signif, neg, keep);
        b.fall(neg, quant);
        b.fall(keep, quant);
        b.fall(quant, magif);
        b.branch(magif, maghi, maglo);
        b.fall(maghi, clampif);
        b.fall(maglo, clampif);
        b.branch(clampif, clampfix, clampok);
        b.fall(clampfix, update);
        b.fall(clampok, update);
        b.loopBack(update, loop);
        b.loopExit(loop, done);
        return b.finish();
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["sample_loop"] = {0, kSamples, 1};
        spec.inductionPorts["sample_loop"] = "i";
        const Word step_base = kSamples;
        const Word index_base = step_base + 16;
        const Word nibble_base = index_base + 8;
        spec.arrayBases["stepTable"] = step_base;
        spec.arrayBases["indexTable"] = index_base;
        spec.arrayBases["nibble"] = nibble_base;
        // "sign" is defined only on the negative branch path; the
        // original source zero-initializes it per iteration.
        // "index" seeds the loop-carried quantizer state.
        spec.scalars["sign"] = 0;
        spec.scalars["index"] = 0;

        Rng rng(0x5eed0007);
        spec.memoryImage.resize(
            static_cast<std::size_t>(nibble_base));
        Word wave = 0;
        for (int i = 0; i < kSamples; ++i) {
            wave += static_cast<Word>(rng.nextRange(-64, 64));
            spec.memoryImage[static_cast<std::size_t>(i)] = wave;
        }
        for (int i = 0; i < 16; ++i)
            spec.memoryImage[static_cast<std::size_t>(step_base +
                                                      i)] =
                kStepTable[i];
        for (int i = 0; i < 8; ++i)
            spec.memoryImage[static_cast<std::size_t>(index_base +
                                                      i)] =
                kIndexTable[i];

        // Golden trace of the update block's "predicted" port and
        // the stored nibble stream.
        std::vector<Word> preds;
        std::vector<Word> nibbles;
        preds.reserve(static_cast<std::size_t>(kSamples));
        nibbles.reserve(static_cast<std::size_t>(kSamples));
        Word predicted = 0;
        int index = 0;
        for (int i = 0; i < kSamples; ++i) {
            Word step = kStepTable[index];
            Word diff =
                spec.memoryImage[static_cast<std::size_t>(i)] -
                predicted;
            Word sign = 0;
            if (diff < 0) {
                diff = -diff;
                sign = 8;
            }
            Word delta =
                std::min<Word>(step == 0 ? 7 : diff * 4 / step, 7);
            if (delta >= 4)
                index += kIndexTable[delta & 7];
            else
                index -= 1;
            index = std::clamp(index, 0, 15);
            Word vpdiff = delta * step / 4;
            predicted += sign ? -vpdiff : vpdiff;
            preds.push_back(predicted);
            nibbles.push_back(sign | delta);
        }
        spec.observePorts = {"predicted"};
        spec.expectedOutputs = {std::move(preds)};
        spec.expectedMemory = {
            {"nibble", nibble_base, std::move(nibbles)}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0007);
        std::vector<Word> samples(
            static_cast<std::size_t>(kSamples));
        Word wave = 0;
        for (Word &s : samples) {
            wave += static_cast<Word>(rng.nextRange(-64, 64));
            s = wave;
        }

        rec.block(bInit);
        Word predicted = 0;
        int index = 0;
        std::uint64_t sum = 0;

        rec.round(bSampleLoop);
        for (int i = 0; i < kSamples; ++i) {
            rec.iteration(bSampleLoop);
            rec.block(bPredict);
            Word step = kStepTable[index];
            Word diff = samples[static_cast<std::size_t>(i)] -
                        predicted;
            Word sign = 0;
            rec.block(bSignIf);
            if (diff < 0) {
                rec.block(bNegate);
                diff = -diff;
                sign = 8;
            } else {
                rec.block(bKeep);
            }
            rec.block(bQuant);
            Word delta =
                std::min<Word>(step == 0 ? 7 : diff * 4 / step, 7);
            rec.block(bMagIf);
            if (delta >= 4) {
                rec.block(bMagHi);
                index += kIndexTable[delta & 7];
            } else {
                rec.block(bMagLo);
                index -= 1;
            }
            rec.block(bClampIf);
            if (index < 0 || index > 15) {
                rec.block(bClampFix);
                index = std::clamp(index, 0, 15);
            } else {
                rec.block(bClampOk);
            }
            rec.block(bUpdate);
            Word vpdiff = delta * step / 4;
            predicted += sign ? -vpdiff : vpdiff;
            Word nibble = sign | delta;
            sum = sum * 17 +
                  static_cast<std::uint64_t>(
                      static_cast<UWord>(nibble));
        }
        rec.block(bDone);
        return sum;
    }
};

} // namespace

const Workload &
adpcmWorkload()
{
    static AdpcmWorkload instance;
    return instance;
}

} // namespace marionette
