/**
 * @file
 * FFT (1024 points) — MachSuite-derived iterative radix-2.
 *
 * Table 1: innermost branch (bit-reverse swap guard), imperfect
 * nested loops (per-group twiddle computation in the middle loop
 * level while the butterflies run innermost).
 */

#include <cmath>
#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kN = 1024;

enum Block : BlockId
{
    bInit = 0,
    bRevLoop,    // bit-reverse permutation loop (depth 1)
    bRevIf,      // swap guard branch
    bRevSwap,    // the swap
    bRevSkip,
    bRevLatch,
    bStageLoop,  // log2(N) stages (depth 1)
    bGroupLoop,  // butterfly groups (depth 2)
    bTwiddle,    // per-group twiddle update (imperfect work)
    bBflyLoop,   // butterflies (depth 3)
    bBflyBody,   // the butterfly computation
    bGroupLatch,
    bStageLatch,
    bDone
};

class FftWorkload : public Workload
{
  public:
    std::string name() const override { return "FFT"; }
    std::string fullName() const override { return "FFT"; }
    std::string sizeDesc() const override { return "1024 points"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("fft");
        BlockId init = b.addBlock("init");
        BlockId rev = b.addLoopHeader("rev_loop");
        BlockId revif = b.addBranchBlock("rev_if");
        BlockId revswap = b.addBlock("rev_swap");
        BlockId revskip = b.addBlock("rev_skip");
        BlockId revlatch = b.addBlock("rev_latch");
        BlockId stage = b.addLoopHeader("stage_loop");
        BlockId group = b.addLoopHeader("group_loop");
        BlockId twid = b.addBlock("twiddle");
        BlockId bfly = b.addLoopHeader("bfly_loop");
        BlockId body = b.addBlock("bfly_body");
        BlockId glatch = b.addBlock("group_latch");
        BlockId slatch = b.addBlock("stage_latch");
        BlockId done = b.addBlock("done");

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("i", c);
        }
        {
            Dfg &d = b.dfg(rev);
            dfg_patterns::addCountedLoop(d, 0, 1, "n");
        }
        {   // if (j > i) swap.
            Dfg &d = b.dfg(revif);
            int i = d.addInput("i");
            int j = d.addInput("j");
            NodeId gt = d.addNode(Opcode::CmpGt, Operand::input(j),
                                  Operand::input(i));
            d.addNode(Opcode::Branch, Operand::node(gt));
            d.addOutput("swap", gt);
        }
        {
            Dfg &d = b.dfg(revswap);
            int i = d.addInput("i");
            int j = d.addInput("j");
            NodeId vi = d.addNode(Opcode::Load, Operand::input(i));
            NodeId vj = d.addNode(Opcode::Load, Operand::input(j));
            d.addNode(Opcode::Store, Operand::input(i),
                      Operand::node(vj));
            d.addNode(Opcode::Store, Operand::input(j),
                      Operand::node(vi));
            d.addOutput("vi", vi);
        }
        {
            // The not-taken path defines 'vi' too (the untouched
            // element reads as 0 downstream): without a value on
            // both paths the swap guard cannot predicate away and
            // the whole kernel used to stall at the predicate
            // pass.
            Dfg &d = b.dfg(revskip);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            NodeId z = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("x", c);
            d.addOutput("vi", z);
        }
        {
            Dfg &d = b.dfg(revlatch);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        }
        {   // stage: len = 2, 4, ..., N.
            Dfg &d = b.dfg(stage);
            int len = d.addInput("len");
            NodeId nx = d.addNode(Opcode::Shl, Operand::input(len),
                                  Operand::imm(1), Operand::none(),
                                  "len*2");
            NodeId lp = d.addNode(Opcode::Loop, Operand::input(len),
                                  Operand::imm(kN + 1));
            d.addOutput("len", nx);
            d.addOutput("continue", lp);
        }
        {   // group: i = 0, len, 2len, ...
            Dfg &d = b.dfg(group);
            int i = d.addInput("i");
            int len = d.addInput("len");
            NodeId nx = d.addNode(Opcode::Add, Operand::input(i),
                                  Operand::input(len));
            NodeId lp = d.addNode(Opcode::Loop, Operand::node(nx),
                                  Operand::imm(kN));
            d.addOutput("i", nx);
            d.addOutput("continue", lp);
        }
        {   // per-group twiddle state (the imperfect outer work).
            Dfg &d = b.dfg(twid);
            int wbase = d.addInput("wbase");
            NodeId wr = d.addNode(Opcode::Mul, Operand::input(wbase),
                                  Operand::imm(0x7ff0), // Q15 cos
                                  Operand::none(), "w.re");
            NodeId wr2 = d.addNode(Opcode::Sra, Operand::node(wr),
                                   Operand::imm(15));
            NodeId wi = d.addNode(Opcode::Mul, Operand::input(wbase),
                                  Operand::imm(0x00c9), // Q15 sin
                                  Operand::none(), "w.im");
            NodeId wi2 = d.addNode(Opcode::Sra, Operand::node(wi),
                                   Operand::imm(15));
            d.addOutput("wre", wr2);
            d.addOutput("wim", wi2);
        }
        {
            Dfg &d = b.dfg(bfly);
            dfg_patterns::addCountedLoop(d, 0, 1, "half");
        }
        {   // butterfly: t = w*a[j+half]; a[j+half]=a[j]-t;
            //            a[j]+=t  (complex, Q15).
            Dfg &d = b.dfg(body);
            int j = d.addInput("j");
            int half = d.addInput("half");
            int wre = d.addInput("wre");
            int wim = d.addInput("wim");
            NodeId jh = d.addNode(Opcode::Add, Operand::input(j),
                                  Operand::input(half));
            NodeId ar = d.addNode(Opcode::Load, Operand::input(j));
            NodeId br = d.addNode(Opcode::Load, Operand::node(jh));
            NodeId tr = d.addNode(Opcode::Mul, Operand::node(br),
                                  Operand::input(wre));
            NodeId tr2 = d.addNode(Opcode::Sra, Operand::node(tr),
                                   Operand::imm(15));
            NodeId ti = d.addNode(Opcode::Mul, Operand::node(br),
                                  Operand::input(wim));
            NodeId ti2 = d.addNode(Opcode::Sra, Operand::node(ti),
                                   Operand::imm(15));
            NodeId lo = d.addNode(Opcode::Sub, Operand::node(ar),
                                  Operand::node(tr2));
            NodeId hi = d.addNode(Opcode::Add, Operand::node(ar),
                                  Operand::node(ti2));
            d.addNode(Opcode::Store, Operand::node(jh),
                      Operand::node(lo));
            d.addNode(Opcode::Store, Operand::input(j),
                      Operand::node(hi));
            d.addOutput("lo", lo);
        }
        for (BlockId lb : {glatch, slatch, done}) {
            Dfg &d = b.dfg(lb);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        }

        b.fall(init, rev);
        b.fall(rev, revif);
        b.branch(revif, revswap, revskip);
        b.fall(revswap, revlatch);
        b.fall(revskip, revlatch);
        b.loopBack(revlatch, rev);
        b.loopExit(rev, stage);
        b.fall(stage, group);
        b.fall(group, twid);
        b.fall(twid, bfly);
        b.fall(bfly, body);
        b.loopBack(body, bfly);
        b.loopExit(bfly, glatch);
        b.loopBack(glatch, group);
        b.loopExit(group, slatch);
        b.loopBack(slatch, stage);
        b.loopExit(stage, done);
        return b.finish();
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0002);
        std::vector<double> re(kN), im(kN, 0.0);
        for (double &v : re)
            v = static_cast<double>(rng.nextRange(-1000, 1000));

        rec.block(bInit);

        // Bit-reverse permutation.
        rec.round(bRevLoop);
        int j = 0;
        for (int i = 0; i < kN; ++i) {
            rec.iteration(bRevLoop);
            rec.block(bRevIf);
            if (j > i) {
                rec.block(bRevSwap);
                std::swap(re[static_cast<std::size_t>(i)],
                          re[static_cast<std::size_t>(j)]);
                std::swap(im[static_cast<std::size_t>(i)],
                          im[static_cast<std::size_t>(j)]);
            } else {
                rec.block(bRevSkip);
            }
            rec.block(bRevLatch);
            int bit = kN >> 1;
            while (j & bit) {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
        }

        // Stages.
        rec.round(bStageLoop);
        for (int len = 2; len <= kN; len <<= 1) {
            rec.iteration(bStageLoop);
            double ang = -2.0 * M_PI / len;
            rec.round(bGroupLoop);
            for (int i = 0; i < kN; i += len) {
                rec.iteration(bGroupLoop);
                rec.block(bTwiddle);
                double wr = 1.0, wi = 0.0;
                double swr = std::cos(ang), swi = std::sin(ang);
                rec.round(bBflyLoop);
                for (int k = 0; k < len / 2; ++k) {
                    rec.iteration(bBflyLoop);
                    rec.block(bBflyBody);
                    std::size_t u0 =
                        static_cast<std::size_t>(i + k);
                    std::size_t u1 = static_cast<std::size_t>(
                        i + k + len / 2);
                    double tr = re[u1] * wr - im[u1] * wi;
                    double ti = re[u1] * wi + im[u1] * wr;
                    re[u1] = re[u0] - tr;
                    im[u1] = im[u0] - ti;
                    re[u0] += tr;
                    im[u0] += ti;
                    double nwr = wr * swr - wi * swi;
                    wi = wr * swi + wi * swr;
                    wr = nwr;
                }
                rec.block(bGroupLatch);
            }
            rec.block(bStageLatch);
        }
        rec.block(bDone);

        std::uint64_t sum = 0;
        for (int i = 0; i < kN; ++i) {
            sum = sum * 131 +
                  static_cast<std::uint64_t>(static_cast<Word>(
                      re[static_cast<std::size_t>(i)]));
        }
        return sum;
    }
};

} // namespace

const Workload &
fftWorkload()
{
    static FftWorkload instance;
    return instance;
}

} // namespace marionette
