/**
 * @file
 * Merge Sort (MS), 1024 elements — MachSuite-derived.
 *
 * The paper's flagship Branch Divergence kernel (Fig. 3a): the merge
 * inner loop forks into a taken/not-taken path every iteration, and
 * the loop nest is imperfect (per-pair setup work in the middle
 * level).  Table 1: nested branches, innermost, under branch;
 * imperfect nested loops.
 */

#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kN = 1024;

// Block layout shared by buildCdfg() and runGolden().
enum Block : BlockId
{
    bInit = 0,
    bWidthLoop,   // outer: merge width 1,2,4,... (depth 1)
    bPairLoop,    // pairs of runs at this width (depth 2)
    bSetup,       // mid/right/i1/i2/iout setup (imperfect work)
    bMergeWhile,  // the merge while loop (depth 3)
    bCmpIf,       // if (in[i1] <= in[i2])  -- Branch Divergence
    bTakeLeft,    // store from left run, i1++
    bTakeRight,   // store from right run, i2++
    bAdvance,     // iout++ (join)
    bDrainLoop,   // copy the leftover run tail (depth 3)
    bDrainBody,
    bPairLatch,
    bWidthLatch,
    bDone,
    numBlocks
};

class MergeSortWorkload : public Workload
{
  public:
    std::string name() const override { return "MS"; }
    std::string fullName() const override { return "Merge Sort"; }
    std::string sizeDesc() const override { return "1024"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("merge_sort");
        BlockId init = b.addBlock("init");
        BlockId width = b.addLoopHeader("width_loop");
        BlockId pair = b.addLoopHeader("pair_loop");
        BlockId setup = b.addBlock("setup");
        BlockId mwhile = b.addLoopHeader("merge_while");
        BlockId cmpif = b.addBranchBlock("cmp_if");
        BlockId tleft = b.addBlock("take_left");
        BlockId tright = b.addBlock("take_right");
        BlockId adv = b.addBlock("advance");
        BlockId drain = b.addLoopHeader("drain_loop");
        BlockId drainb = b.addBlock("drain_body");
        BlockId platch = b.addBlock("pair_latch");
        BlockId wlatch = b.addBlock("width_latch");
        BlockId done = b.addBlock("done");

        {   // init: width = 1.
            Dfg &d = b.dfg(init);
            NodeId w = d.addNode(Opcode::Const,
                                 Operand::imm(1), Operand::none(),
                                 Operand::none(), "width");
            d.addOutput("width", w);
        }
        {   // width loop: while (width < n) ... width *= 2.
            Dfg &d = b.dfg(width);
            int w = d.addInput("width");
            NodeId dbl = d.addNode(Opcode::Shl, Operand::input(w),
                                   Operand::imm(1), Operand::none(),
                                   "width.next");
            NodeId lp = d.addNode(Opcode::Loop, Operand::input(w),
                                  Operand::imm(kN), Operand::none(),
                                  "width.loop");
            d.addOutput("width", dbl);
            d.addOutput("continue", lp);
        }
        {   // pair loop: left = 0, 2*width, ...
            Dfg &d = b.dfg(pair);
            int w = d.addInput("width");
            int left = d.addInput("left");
            NodeId step = d.addNode(Opcode::Shl, Operand::input(w),
                                    Operand::imm(1), Operand::none(),
                                    "pair.step");
            NodeId nxt = d.addNode(Opcode::Add, Operand::input(left),
                                   Operand::node(step),
                                   Operand::none(), "left.next");
            NodeId lp = d.addNode(Opcode::Loop, Operand::node(nxt),
                                  Operand::imm(kN), Operand::none(),
                                  "pair.loop");
            d.addOutput("left", nxt);
            d.addOutput("continue", lp);
        }
        {   // setup: mid = min(left+w, n); right = min(left+2w, n).
            Dfg &d = b.dfg(setup);
            int left = d.addInput("left");
            int w = d.addInput("width");
            NodeId lw = d.addNode(Opcode::Add, Operand::input(left),
                                  Operand::input(w), Operand::none(),
                                  "left+w");
            NodeId mid = d.addNode(Opcode::Min, Operand::node(lw),
                                   Operand::imm(kN), Operand::none(),
                                   "mid");
            NodeId lw2 = d.addNode(Opcode::Add, Operand::node(lw),
                                   Operand::input(w), Operand::none(),
                                   "left+2w");
            NodeId right = d.addNode(Opcode::Min, Operand::node(lw2),
                                     Operand::imm(kN),
                                     Operand::none(), "right");
            NodeId i1 = d.addNode(Opcode::Copy, Operand::input(left),
                                  Operand::none(), Operand::none(),
                                  "i1");
            NodeId i2 = d.addNode(Opcode::Copy, Operand::node(mid),
                                  Operand::none(), Operand::none(),
                                  "i2");
            d.addOutput("mid", mid);
            d.addOutput("right", right);
            d.addOutput("i1", i1);
            d.addOutput("i2", i2);
        }
        {   // while (i1 < mid && i2 < right).
            Dfg &d = b.dfg(mwhile);
            int i1 = d.addInput("i1");
            int i2 = d.addInput("i2");
            int mid = d.addInput("mid");
            int right = d.addInput("right");
            NodeId c1 = d.addNode(Opcode::CmpLt, Operand::input(i1),
                                  Operand::input(mid),
                                  Operand::none(), "i1<mid");
            NodeId c2 = d.addNode(Opcode::CmpLt, Operand::input(i2),
                                  Operand::input(right),
                                  Operand::none(), "i2<right");
            NodeId both = d.addNode(Opcode::And, Operand::node(c1),
                                    Operand::node(c2),
                                    Operand::none(), "both");
            NodeId lp = d.addNode(Opcode::Loop, Operand::node(both),
                                  Operand::imm(1), Operand::none(),
                                  "while.loop");
            d.addOutput("continue", lp);
        }
        {   // if (in[i1] <= in[i2]).
            Dfg &d = b.dfg(cmpif);
            int i1 = d.addInput("i1");
            int i2 = d.addInput("i2");
            NodeId v1 = d.addNode(Opcode::Load, Operand::input(i1),
                                  Operand::none(), Operand::none(),
                                  "in[i1]");
            NodeId v2 = d.addNode(Opcode::Load, Operand::input(i2),
                                  Operand::none(), Operand::none(),
                                  "in[i2]");
            NodeId le = d.addNode(Opcode::CmpLe, Operand::node(v1),
                                  Operand::node(v2), Operand::none(),
                                  "le");
            NodeId br = d.addNode(Opcode::Branch, Operand::node(le),
                                  Operand::none(), Operand::none(),
                                  "br");
            d.addOutput("v1", v1);
            d.addOutput("v2", v2);
            d.addOutput("take_left", br);
        }
        {   // taken: out[iout] = in[i1]; i1++.
            Dfg &d = b.dfg(tleft);
            int iout = d.addInput("iout");
            int v1 = d.addInput("v1");
            int i1 = d.addInput("i1");
            d.addNode(Opcode::Store, Operand::input(iout),
                      Operand::input(v1), Operand::none(),
                      "out[iout]");
            NodeId inc = d.addNode(Opcode::Add, Operand::input(i1),
                                   Operand::imm(1), Operand::none(),
                                   "i1++");
            d.addOutput("i1", inc);
        }
        {   // not taken: out[iout] = in[i2]; i2++.
            Dfg &d = b.dfg(tright);
            int iout = d.addInput("iout");
            int v2 = d.addInput("v2");
            int i2 = d.addInput("i2");
            d.addNode(Opcode::Store, Operand::input(iout),
                      Operand::input(v2), Operand::none(),
                      "out[iout]");
            NodeId inc = d.addNode(Opcode::Add, Operand::input(i2),
                                   Operand::imm(1), Operand::none(),
                                   "i2++");
            d.addOutput("i2", inc);
        }
        {   // join: iout++.
            Dfg &d = b.dfg(adv);
            int iout = d.addInput("iout");
            NodeId inc = d.addNode(Opcode::Add, Operand::input(iout),
                                   Operand::imm(1), Operand::none(),
                                   "iout++");
            d.addOutput("iout", inc);
        }
        {   // drain loop: while (i1 < mid || i2 < right).
            Dfg &d = b.dfg(drain);
            int i1 = d.addInput("i1");
            int mid = d.addInput("mid");
            NodeId c = d.addNode(Opcode::CmpLt, Operand::input(i1),
                                 Operand::input(mid),
                                 Operand::none(), "more");
            NodeId lp = d.addNode(Opcode::Loop, Operand::node(c),
                                  Operand::imm(1), Operand::none(),
                                  "drain.loop");
            d.addOutput("continue", lp);
        }
        {   // drain body: out[iout++] = in[i++].
            Dfg &d = b.dfg(drainb);
            int i = d.addInput("i");
            int iout = d.addInput("iout");
            NodeId v = d.addNode(Opcode::Load, Operand::input(i),
                                 Operand::none(), Operand::none(),
                                 "in[i]");
            d.addNode(Opcode::Store, Operand::input(iout),
                      Operand::node(v), Operand::none(),
                      "out[iout]");
            NodeId inc = d.addNode(Opcode::Add, Operand::input(i),
                                   Operand::imm(1), Operand::none(),
                                   "i++");
            NodeId incout = d.addNode(Opcode::Add,
                                      Operand::input(iout),
                                      Operand::imm(1),
                                      Operand::none(), "iout++");
            d.addOutput("i", inc);
            d.addOutput("iout", incout);
        }
        for (BlockId lb : {platch, wlatch, done}) {
            Dfg &d = b.dfg(lb);
            int x = d.addInput("x");
            NodeId cp = d.addNode(Opcode::Copy, Operand::input(x),
                                  Operand::none(), Operand::none());
            d.addOutput("x", cp);
        }

        b.fall(init, width);
        b.fall(width, pair);
        b.fall(pair, setup);
        b.fall(setup, mwhile);
        b.fall(mwhile, cmpif);
        b.branch(cmpif, tleft, tright);
        b.fall(tleft, adv);
        b.fall(tright, adv);
        b.loopBack(adv, mwhile);
        b.loopExit(mwhile, drain);
        b.fall(drain, drainb);
        b.loopBack(drainb, drain);
        b.loopExit(drain, platch);
        b.loopBack(platch, pair);
        b.loopExit(pair, wlatch);
        b.loopBack(wlatch, width);
        b.loopExit(width, done);
        return b.finish();
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed0001);
        std::vector<Word> in(kN), out(kN);
        for (Word &v : in)
            v = static_cast<Word>(rng.nextRange(-100000, 100000));

        rec.block(bInit);
        rec.round(bWidthLoop);
        for (int width = 1; width < kN; width <<= 1) {
            rec.iteration(bWidthLoop);
            rec.round(bPairLoop);
            for (int left = 0; left < kN; left += 2 * width) {
                rec.iteration(bPairLoop);
                rec.block(bSetup);
                int mid = std::min(left + width, kN);
                int right = std::min(left + 2 * width, kN);
                int i1 = left, i2 = mid, iout = left;
                rec.round(bMergeWhile);
                while (i1 < mid && i2 < right) {
                    rec.iteration(bMergeWhile);
                    rec.block(bCmpIf);
                    if (in[static_cast<std::size_t>(i1)] <=
                        in[static_cast<std::size_t>(i2)]) {
                        rec.block(bTakeLeft);
                        out[static_cast<std::size_t>(iout)] =
                            in[static_cast<std::size_t>(i1)];
                        ++i1;
                    } else {
                        rec.block(bTakeRight);
                        out[static_cast<std::size_t>(iout)] =
                            in[static_cast<std::size_t>(i2)];
                        ++i2;
                    }
                    rec.block(bAdvance);
                    ++iout;
                }
                rec.round(bDrainLoop);
                while (i1 < mid) {
                    rec.iteration(bDrainLoop);
                    rec.block(bDrainBody);
                    out[static_cast<std::size_t>(iout++)] =
                        in[static_cast<std::size_t>(i1++)];
                }
                while (i2 < right) {
                    rec.iteration(bDrainLoop);
                    rec.block(bDrainBody);
                    out[static_cast<std::size_t>(iout++)] =
                        in[static_cast<std::size_t>(i2++)];
                }
                rec.block(bPairLatch);
            }
            in.swap(out);
            rec.block(bWidthLatch);
        }
        rec.block(bDone);

        std::uint64_t sum = 0;
        for (int i = 0; i < kN; ++i)
            sum = sum * 31 +
                  static_cast<std::uint64_t>(
                      static_cast<UWord>(in[static_cast<
                          std::size_t>(i)]));
        return sum;
    }
};

} // namespace

const Workload &
mergeSortWorkload()
{
    static MergeSortWorkload instance;
    return instance;
}

} // namespace marionette
