/**
 * @file
 * GEMM — 64 x 64 integer matrix multiply (MachSuite).
 *
 * The canonical Imperfect Loop (Table 1: no branches, imperfect
 * nested loops): the accumulator reset and the C-store live at the
 * middle loop level while the MAC loop runs innermost.  Fig. 15's
 * best case: Agile PE Assignment folds the outer blocks into the
 * dense inner pipeline (the paper reports a 134x outer-BB PE
 * utilization gain here).
 */

#include <vector>

#include "ir/builder.h"
#include "sim/rng.h"
#include "workloads/kernels.h"

namespace marionette
{

namespace
{

constexpr int kDim = 64;

enum Block : BlockId
{
    bInit = 0,
    bILoop,   // rows (depth 1)
    bJLoop,   // cols (depth 2)
    bZero,    // sum = 0 (imperfect work at depth 2)
    bKLoop,   // dot product (depth 3)
    bMac,     // sum += A[i][k] * B[k][j]
    bStoreC,  // C[i][j] = sum (depth 2)
    bILatch,
    bDone
};

class GemmWorkload : public Workload
{
  public:
    std::string name() const override { return "GEMM"; }
    std::string fullName() const override { return "GEMM"; }
    std::string sizeDesc() const override { return "64 x 64"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("gemm");
        BlockId init = b.addBlock("init");
        BlockId iloop = b.addLoopHeader("i_loop");
        BlockId jloop = b.addLoopHeader("j_loop");
        BlockId zero = b.addBlock("zero_sum");
        BlockId kloop = b.addLoopHeader("k_loop");
        BlockId mac = b.addBlock("mac");
        BlockId storec = b.addBlock("store_c");
        BlockId ilatch = b.addBlock("i_latch");
        BlockId done = b.addBlock("done");

        auto copyBlock = [&](BlockId id) {
            Dfg &d = b.dfg(id);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        };

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("i", c);
        }
        for (BlockId hdr : {iloop, jloop, kloop}) {
            Dfg &d = b.dfg(hdr);
            dfg_patterns::addCountedLoop(d, 0, 1, "n");
        }
        {
            Dfg &d = b.dfg(zero);
            NodeId z = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("sum", z);
        }
        {   // sum += A[i*n+k] * B[k*n+j].
            Dfg &d = b.dfg(mac);
            int i = d.addInput("i");
            int j = d.addInput("j");
            int k = d.addInput("k");
            int sum = d.addInput("sum");
            NodeId ai = d.addNode(Opcode::Shl, Operand::input(i),
                                  Operand::imm(6));
            NodeId ai2 = d.addNode(Opcode::Add, Operand::node(ai),
                                   Operand::input(k));
            NodeId a = d.addNode(Opcode::Load, Operand::node(ai2),
                                 Operand::none(), Operand::none(),
                                 "A");
            NodeId bi = d.addNode(Opcode::Shl, Operand::input(k),
                                  Operand::imm(6));
            NodeId bi2 = d.addNode(Opcode::Add, Operand::node(bi),
                                   Operand::input(j));
            NodeId bb2 = d.addNode(Opcode::Load, Operand::node(bi2),
                                   Operand::none(), Operand::none(),
                                   "B");
            NodeId m = d.addNode(Opcode::Mac, Operand::node(a),
                                 Operand::node(bb2),
                                 Operand::input(sum), "sum'");
            d.addOutput("sum", m);
        }
        {
            Dfg &d = b.dfg(storec);
            int i = d.addInput("i");
            int j = d.addInput("j");
            int sum = d.addInput("sum");
            NodeId ci = d.addNode(Opcode::Shl, Operand::input(i),
                                  Operand::imm(6));
            NodeId ci2 = d.addNode(Opcode::Add, Operand::node(ci),
                                   Operand::input(j));
            d.addNode(Opcode::Store, Operand::node(ci2),
                      Operand::input(sum), Operand::none(), "C");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(sum));
            d.addOutput("x", c);
        }
        copyBlock(ilatch);
        copyBlock(done);

        b.fall(init, iloop);
        b.fall(iloop, jloop);
        b.fall(jloop, zero);
        b.fall(zero, kloop);
        b.fall(kloop, mac);
        b.loopBack(mac, kloop);
        b.loopExit(kloop, storec);
        b.loopBack(storec, jloop);
        b.loopExit(jloop, ilatch);
        b.loopBack(ilatch, iloop);
        b.loopExit(iloop, done);
        return b.finish();
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        WorkloadMachineSpec spec;
        spec.available = true;
        for (const char *hdr : {"i_loop", "j_loop", "k_loop"})
            spec.loopBounds[hdr] = {0, kDim, 1};
        spec.inductionPorts["i_loop"] = "i";
        spec.inductionPorts["j_loop"] = "j";
        spec.inductionPorts["k_loop"] = "k";
        // Rows of C are independent: each (i, j) accumulation
        // reads only row i of A and all of B, writes only row i of
        // C, and the observed running sum resets per (i, j).  The
        // unroll pass may stripe i across replicas.
        spec.parallelLoops = {"i_loop"};
        const Word n2 = kDim * kDim;
        spec.arrayBases["A"] = 0;
        spec.arrayBases["B"] = n2;
        spec.arrayBases["C"] = 2 * n2;
        Rng rng(0x5eed000a);
        spec.memoryImage.resize(static_cast<std::size_t>(2 * n2));
        for (Word &v : spec.memoryImage)
            v = static_cast<Word>(rng.nextRange(-9, 9));
        // Golden trace of the mac block's "sum" port: the running
        // sum after every (i, j, k) term, plus the final C matrix.
        std::vector<Word> sums;
        sums.reserve(
            static_cast<std::size_t>(kDim) * kDim * kDim);
        std::vector<Word> c(static_cast<std::size_t>(n2));
        const Word *a = spec.memoryImage.data();
        const Word *b = spec.memoryImage.data() + n2;
        for (int i = 0; i < kDim; ++i) {
            for (int j = 0; j < kDim; ++j) {
                Word sum = 0;
                for (int k = 0; k < kDim; ++k) {
                    sum += a[i * kDim + k] * b[k * kDim + j];
                    sums.push_back(sum);
                }
                c[static_cast<std::size_t>(i * kDim + j)] = sum;
            }
        }
        spec.observePorts = {"sum"};
        spec.expectedOutputs = {std::move(sums)};
        spec.expectedMemory = {{"C", 2 * n2, std::move(c)}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        Rng rng(0x5eed000a);
        std::vector<Word> a(
            static_cast<std::size_t>(kDim * kDim));
        std::vector<Word> bm(
            static_cast<std::size_t>(kDim * kDim));
        std::vector<Word> c(
            static_cast<std::size_t>(kDim * kDim), 0);
        for (Word &v : a)
            v = static_cast<Word>(rng.nextRange(-9, 9));
        for (Word &v : bm)
            v = static_cast<Word>(rng.nextRange(-9, 9));

        rec.block(bInit);
        rec.round(bILoop);
        for (int i = 0; i < kDim; ++i) {
            rec.iteration(bILoop);
            rec.round(bJLoop);
            for (int j = 0; j < kDim; ++j) {
                rec.iteration(bJLoop);
                rec.block(bZero);
                Word sum = 0;
                rec.round(bKLoop);
                for (int k = 0; k < kDim; ++k) {
                    rec.iteration(bKLoop);
                    rec.block(bMac);
                    sum += a[static_cast<std::size_t>(
                               i * kDim + k)] *
                           bm[static_cast<std::size_t>(
                               k * kDim + j)];
                }
                rec.block(bStoreC);
                c[static_cast<std::size_t>(i * kDim + j)] = sum;
            }
            rec.block(bILatch);
        }
        rec.block(bDone);

        std::uint64_t sum = 0;
        for (const Word v : c)
            sum = sum * 31 +
                  static_cast<std::uint64_t>(static_cast<UWord>(v));
        return sum;
    }
};

} // namespace

const Workload &
gemmWorkload()
{
    static GemmWorkload instance;
    return instance;
}

} // namespace marionette
