/**
 * @file
 * Benchmark workloads (paper Table 5 / Sec. 6.2).
 *
 * Every workload provides (a) its CDFG — the graph the paper's
 * modified-Clang flow would extract from the annotated C source —
 * and (b) a *golden* C++ implementation instrumented to record the
 * dynamic basic-block trace (loop rounds, iterations, branch
 * directions).  The trace-driven performance models replay those
 * traces under each architecture's execution model; the functional
 * machine runs a subset end to end.
 *
 * All data is 32-bit, with the exact sizes of Table 5; inputs are
 * generated with the deterministic RNG so every run is reproducible.
 */

#ifndef MARIONETTE_WORKLOADS_WORKLOAD_H
#define MARIONETTE_WORKLOADS_WORKLOAD_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/analysis.h"
#include "ir/cdfg.h"
#include "ir/loop_info.h"
#include "ir/trace.h"

namespace marionette
{

/**
 * Trace hooks the instrumented golden implementations call.
 * round()/iteration() keep exact loop statistics (the analytic
 * models need rounds and trip counts, not just block counts);
 * block() records ordinary body-block executions including branch
 * directions.
 */
class KernelRecorder
{
  public:
    /** A loop header begins a new round (entry from outside). */
    void
    round(BlockId header)
    {
        ++rounds_[header];
        trace_.record(header);
    }

    /** One iteration of the loop owning @p header. */
    void
    iteration(BlockId header)
    {
        ++iterations_[header];
    }

    /** One execution of a non-header block. */
    void block(BlockId b) { trace_.record(b); }

    const BlockTrace &trace() const { return trace_; }

    std::uint64_t
    rounds(BlockId header) const
    {
        auto it = rounds_.find(header);
        return it == rounds_.end() ? 0 : it->second;
    }

    std::uint64_t
    iterations(BlockId header) const
    {
        auto it = iterations_.find(header);
        return it == iterations_.end() ? 0 : it->second;
    }

    const std::map<BlockId, std::uint64_t> &allRounds() const
    { return rounds_; }
    const std::map<BlockId, std::uint64_t> &allIterations() const
    { return iterations_; }

  private:
    BlockTrace trace_;
    std::map<BlockId, std::uint64_t> rounds_;
    std::map<BlockId, std::uint64_t> iterations_;
};

/** Everything the models need to know about one benchmark run. */
struct WorkloadProfile
{
    std::string name;
    std::string sizeDesc;
    Cdfg cdfg;
    LoopInfo loops;
    BlockTrace trace;
    std::map<BlockId, std::uint64_t> loopRounds;
    std::map<BlockId, std::uint64_t> loopIterations;
    ControlFlowProfile controlFlow;
    /** Paper grouping: the 10 intensive vs. CO/SI/GP. */
    bool intensive = false;

    std::uint64_t
    roundsOf(BlockId header) const
    {
        auto it = loopRounds.find(header);
        return it == loopRounds.end() ? 0 : it->second;
    }

    std::uint64_t
    iterationsOf(BlockId header) const
    {
        auto it = loopIterations.find(header);
        return it == loopIterations.end() ? 0 : it->second;
    }
};

/** Base class of the 13 benchmarks. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Paper abbreviation (MS, FFT, VI, ...). */
    virtual std::string name() const = 0;

    /** Full name. */
    virtual std::string fullName() const = 0;

    /** Table 5 data-size string. */
    virtual std::string sizeDesc() const = 0;

    /** Build the kernel's CDFG. */
    virtual Cdfg buildCdfg() const = 0;

    /** Run the golden implementation, recording the trace.
     *  @return a checksum of the computed outputs (regression
     *  anchor for the golden implementations themselves). */
    virtual std::uint64_t runGolden(KernelRecorder &rec) const = 0;

    /** Paper grouping (Sec. 6.2). */
    virtual bool intensiveControlFlow() const { return true; }

    /** Assemble the full profile (CDFG + analysis + trace). */
    WorkloadProfile profile() const;
};

/** The 13 workloads in the paper's plot order:
 *  MS FFT VI NW HT CRC ADPCM SCD LDPC GEMM CO SI GP. */
const std::vector<const Workload *> &allWorkloads();

/** Lookup by abbreviation; nullptr when unknown. */
const Workload *findWorkload(const std::string &name);

} // namespace marionette

#endif // MARIONETTE_WORKLOADS_WORKLOAD_H
