/**
 * @file
 * Benchmark workloads (paper Table 5 / Sec. 6.2).
 *
 * Every workload provides (a) its CDFG — the graph the paper's
 * modified-Clang flow would extract from the annotated C source —
 * and (b) a *golden* C++ implementation instrumented to record the
 * dynamic basic-block trace (loop rounds, iterations, branch
 * directions).  The trace-driven performance models replay those
 * traces under each architecture's execution model; the functional
 * machine runs a subset end to end.
 *
 * All data is 32-bit, with the exact sizes of Table 5; inputs are
 * generated with the deterministic RNG so every run is reproducible.
 */

#ifndef MARIONETTE_WORKLOADS_WORKLOAD_H
#define MARIONETTE_WORKLOADS_WORKLOAD_H

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/analysis.h"
#include "ir/cdfg.h"
#include "ir/loop_info.h"
#include "ir/trace.h"

namespace marionette
{

/**
 * Trace hooks the instrumented golden implementations call.
 * round()/iteration() keep exact loop statistics (the analytic
 * models need rounds and trip counts, not just block counts);
 * block() records ordinary body-block executions including branch
 * directions.
 */
class KernelRecorder
{
  public:
    /** A loop header begins a new round (entry from outside). */
    void
    round(BlockId header)
    {
        ++rounds_[header];
        trace_.record(header);
    }

    /** One iteration of the loop owning @p header. */
    void
    iteration(BlockId header)
    {
        ++iterations_[header];
    }

    /** One execution of a non-header block. */
    void block(BlockId b) { trace_.record(b); }

    const BlockTrace &trace() const { return trace_; }

    std::uint64_t
    rounds(BlockId header) const
    {
        auto it = rounds_.find(header);
        return it == rounds_.end() ? 0 : it->second;
    }

    std::uint64_t
    iterations(BlockId header) const
    {
        auto it = iterations_.find(header);
        return it == iterations_.end() ? 0 : it->second;
    }

    const std::map<BlockId, std::uint64_t> &allRounds() const
    { return rounds_; }
    const std::map<BlockId, std::uint64_t> &allIterations() const
    { return iterations_; }

  private:
    BlockTrace trace_;
    std::map<BlockId, std::uint64_t> rounds_;
    std::map<BlockId, std::uint64_t> iterations_;
};

/** Everything the models need to know about one benchmark run. */
struct WorkloadProfile
{
    std::string name;
    std::string sizeDesc;
    Cdfg cdfg;
    LoopInfo loops;
    BlockTrace trace;
    std::map<BlockId, std::uint64_t> loopRounds;
    std::map<BlockId, std::uint64_t> loopIterations;
    ControlFlowProfile controlFlow;
    /** Paper grouping: the 10 intensive vs. CO/SI/GP. */
    bool intensive = false;

    std::uint64_t
    roundsOf(BlockId header) const
    {
        auto it = loopRounds.find(header);
        return it == loopRounds.end() ? 0 : it->second;
    }

    std::uint64_t
    iterationsOf(BlockId header) const
    {
        auto it = loopIterations.find(header);
        return it == loopIterations.end() ? 0 : it->second;
    }
};

/** Constant counted-loop parameters of one loop header, part of a
 *  workload's machine-run data (trip counts are input data: the
 *  paper's configuration generator bakes them into the loop
 *  operators). */
struct MachineLoopBound
{
    Word start = 0;
    Word bound = 0;
    Word step = 1;
};

/** A golden final-memory region the machine run must reproduce. */
struct MemoryRegionCheck
{
    std::string label;
    Word base = 0;
    std::vector<Word> expect;
};

/**
 * Everything the CDFG->Program compiler needs beyond the graph to
 * run a workload on the cycle-accurate machine and cross-validate
 * it: concrete input data, address-space layout, loop trip counts,
 * and the golden observation streams.
 *
 * `expectedOutputs[k]` is the *dynamic value trace* of observation
 * port `observePorts[k]`: the sequence of values that port takes
 * over the golden implementation's dynamic executions of its block.
 * This is compilation-independent — any correct lowering that
 * preserves iteration order must stream exactly these words into
 * output FIFO k.
 */
struct WorkloadMachineSpec
{
    /** False (the default) when the workload has no machine-run
     *  data; the compiler reports this instead of guessing. */
    bool available = false;
    /** Counted-loop parameters by loop-header *block name*. */
    std::map<std::string, MachineLoopBound> loopBounds;
    /** Static iteration cap per while-form loop header: the
     *  guarded-exit lowering sizes the loop's slot range with the
     *  cap and masks iterations past the dynamic exit. */
    std::map<std::string, Word> whileBounds;
    /** Per-loop-header round resets: named loop-carried state
     *  re-seeded to a constant at every entry of that loop from
     *  outside (the zero-initialized locals of the original C
     *  source, e.g. a min-tracker's +inf). */
    std::map<std::string, std::map<std::string, Word>> roundResets;
    /** Body port name each loop header's induction stream drives,
     *  by header block name (e.g. "i_loop" -> "i"). */
    std::map<std::string, std::string> inductionPorts;
    /** Scratchpad base address per named Load/Store node (the
     *  array the access targets); unnamed accesses use base 0. */
    std::map<std::string, Word> arrayBases;
    /** Immediate bindings for scalar live-ins, and seeds for
     *  loop-carried values the init block does not define. */
    std::map<std::string, Word> scalars;
    /** Initial scratchpad contents, loaded at address 0. */
    std::vector<Word> memoryImage;
    /** Loop headers the workload author asserts are stripe-safe:
     *  iterations of these counted loops touch disjoint data and
     *  may be partitioned across PE replicas.  The unroll pass
     *  only considers annotated headers, and still re-proves
     *  legality (no memory recurrence, no genuine cross-iteration
     *  carried value) before replicating. */
    std::set<std::string> parallelLoops;
    /** Minimum store->load alias distance (in flat slots) per
     *  fence-carried value: a load at slot t can only alias a
     *  store at slot <= t - distance.  Lets the lowering relax
     *  the store->load ordering token chain by that many slots
     *  (capped by channel depth) instead of serializing every
     *  slot pair. */
    std::map<std::string, Word> fenceMinDistance;
    /** DFG output ports to stream into output FIFOs, in FIFO
     *  order.  Each name must resolve in exactly one phase. */
    std::vector<std::string> observePorts;
    /** Golden value trace per observed port (see above). */
    std::vector<std::vector<Word>> expectedOutputs;
    /** Golden final-memory regions. */
    std::vector<MemoryRegionCheck> expectedMemory;
};

/** Base class of the 13 benchmarks. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Paper abbreviation (MS, FFT, VI, ...). */
    virtual std::string name() const = 0;

    /** Full name. */
    virtual std::string fullName() const = 0;

    /** Table 5 data-size string. */
    virtual std::string sizeDesc() const = 0;

    /** Build the kernel's CDFG. */
    virtual Cdfg buildCdfg() const = 0;

    /** Run the golden implementation, recording the trace.
     *  @return a checksum of the computed outputs (regression
     *  anchor for the golden implementations themselves). */
    virtual std::uint64_t runGolden(KernelRecorder &rec) const = 0;

    /** Paper grouping (Sec. 6.2). */
    virtual bool intensiveControlFlow() const { return true; }

    /**
     * Machine-run data for the CDFG->Program compiler (inputs,
     * layout, trip counts, golden streams).  The default is
     * "unavailable": the compiler rejects the workload with a
     * diagnostic rather than fabricating inputs.
     */
    virtual WorkloadMachineSpec machineSpec() const { return {}; }

    /** Assemble the full profile (CDFG + analysis + trace). */
    WorkloadProfile profile() const;
};

/** The 13 workloads in the paper's plot order:
 *  MS FFT VI NW HT CRC ADPCM SCD LDPC GEMM CO SI GP. */
const std::vector<const Workload *> &allWorkloads();

/** Lookup by abbreviation or full name; nullptr when unknown.
 *  O(1): backed by a name-indexed map over the registry. */
const Workload *findWorkload(const std::string &name);

/** The 13 abbreviations in plot order (CLI listings). */
std::vector<std::string> workloadNames();

} // namespace marionette

#endif // MARIONETTE_WORKLOADS_WORKLOAD_H
