/**
 * @file
 * The spatial-architecture survey of paper Table 2: a decade of
 * SAs categorized by PE execution model (von Neumann-derived vs.
 * dataflow-derived) with each design's configuration-triggering
 * mechanism.  The taxonomy drives the paper's Sec. 2.3 analysis
 * and this repository's model zoo (the two PE baselines of
 * Fig. 11 are the two rows' archetypes).
 */

#ifndef MARIONETTE_MODEL_TAXONOMY_H
#define MARIONETTE_MODEL_TAXONOMY_H

#include <string>
#include <vector>

namespace marionette
{

/** The two PE execution-model families of Sec. 2.3 / Fig. 2. */
enum class PeModelClass
{
    VonNeumann,  ///< Sequenced configurations; PC/FSM/host-driven.
    Dataflow     ///< Token tags select the configuration.
};

/** One surveyed architecture (a Table 2 row). */
struct TaxonomyEntry
{
    std::string architecture;
    PeModelClass cls = PeModelClass::VonNeumann;
    /** "Mechanism for configuration triggering" column. */
    std::string mechanism;
    /** Publication year (ordering aid). */
    int year = 0;
};

/** Table 2's rows, in the paper's order. */
const std::vector<TaxonomyEntry> &taxonomy();

/** Rows of one family. */
std::vector<TaxonomyEntry> taxonomyOf(PeModelClass cls);

/** Render Table 2. */
std::string renderTaxonomy();

/** Family name helper. */
std::string_view peModelClassName(PeModelClass cls);

} // namespace marionette

#endif // MARIONETTE_MODEL_TAXONOMY_H
