/**
 * @file
 * Trace-driven performance models (paper Sec. 6.1).
 *
 * The paper "built the performance models of Softbrain, TIA, REVEL,
 * RipTide and Marionette with the simulator and normalized the
 * computing fabric to the same size".  Each model here replays a
 * workload's measured loop structure under one architecture's
 * execution-model semantics:
 *
 *  - how many PEs each basic-block pipeline receives (static
 *    partition vs. Agile innermost-first assignment),
 *  - which initiation interval the pipeline sustains (footprint-
 *    limited, dependence-limited, or config-coupling-limited),
 *  - what each control transfer costs (CCU round trip, data-path
 *    token, data-mesh address, or 1-cycle control network), and
 *  - whether loop rounds decouple through Control FIFOs.
 *
 * All fabrics are normalized to the same PE count and use the
 * paper's relative latencies (configure 1, execute 2, control
 * network 1, data mesh 6, Sec. 2.3 / Fig. 4d).
 */

#ifndef MARIONETTE_MODEL_ARCH_MODEL_H
#define MARIONETTE_MODEL_ARCH_MODEL_H

#include <memory>
#include <string>
#include <vector>

#include "model/structure.h"
#include "sim/config.h"
#include "workloads/workload.h"

namespace marionette
{

/** Normalized fabric parameters shared by every model. */
struct ModelParams
{
    int numPes = 16;
    double configLat = 1.0;
    double execLat = 2.0;
    double ctrlNetLat = 1.0;
    double dataNetLat = 6.0;
    double ccuRoundTrip = 8.0;
};

/** Outcome of one model x workload evaluation. */
struct ModelResult
{
    double cycles = 0.0;
    /** Useful-op utilization of the whole array. */
    double peUtilization = 0.0;
    /** Utilization of the PEs holding outer-loop blocks (Fig 15). */
    double outerBbPeUtil = 0.0;
    /** Pipeline utilization: initiations / busy cycles (Fig 15). */
    double pipelineUtil = 0.0;
};

/** Abstract architecture performance model. */
class ArchModel
{
  public:
    explicit ArchModel(const ModelParams &params)
        : params_(params)
    {}
    virtual ~ArchModel() = default;

    virtual std::string name() const = 0;

    /** Evaluate one workload. */
    virtual ModelResult run(const WorkloadProfile &profile) const
        = 0;

    const ModelParams &params() const { return params_; }

  protected:
    ModelParams params_;
};

// ---- Factories -------------------------------------------------

/** Von Neumann PE baseline (Fig. 11): predication for branches,
 *  CCU-orchestrated loop rounds. */
std::unique_ptr<ArchModel> makeVonNeumannPe(const ModelParams &p);

/** Dataflow PE baseline (Fig. 11): tagged tokens couple config and
 *  data in time and space. */
std::unique_ptr<ArchModel> makeDataflowPe(const ModelParams &p);

/** Marionette with selectable features (Figs. 11/12/14/16/17). */
std::unique_ptr<ArchModel> makeMarionette(const ModelParams &p,
                                          const Features &f);

/** Softbrain (stream-dataflow, ISCA'17). */
std::unique_ptr<ArchModel> makeSoftbrain(const ModelParams &p);

/** TIA (triggered instructions, ISCA'13). */
std::unique_ptr<ArchModel> makeTia(const ModelParams &p);

/** REVEL (hybrid systolic-dataflow, HPCA'20):
 *  15 systolic PEs + 1 tagged-dataflow PE. */
std::unique_ptr<ArchModel> makeRevel(const ModelParams &p);

/** RipTide (control flow inside the NoC, MICRO'22). */
std::unique_ptr<ArchModel> makeRiptide(const ModelParams &p);

} // namespace marionette

#endif // MARIONETTE_MODEL_ARCH_MODEL_H
