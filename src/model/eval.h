/**
 * @file
 * Evaluation harness over the model zoo: runs architectures across
 * the benchmark suite, computes normalized speedups and geomeans,
 * and renders the tables behind Figs. 11-17.
 */

#ifndef MARIONETTE_MODEL_EVAL_H
#define MARIONETTE_MODEL_EVAL_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "model/arch_model.h"

namespace marionette
{

/** cycles[arch][workload]. */
using CycleTable =
    std::map<std::string, std::map<std::string, ModelResult>>;

class SweepRunner;

/** Run each model on each profile. */
CycleTable
runSuite(const std::vector<const ArchModel *> &models,
         const std::vector<WorkloadProfile> &profiles);

/**
 * runSuite() with the model x workload grid fanned out across
 * @p runner's thread pool.  The table is identical to the serial
 * one — cells are keyed by (model, workload), not by completion
 * order.
 */
CycleTable
runSuiteParallel(const std::vector<const ArchModel *> &models,
                 const std::vector<WorkloadProfile> &profiles,
                 const SweepRunner &runner);

/** Geometric mean of a vector of ratios. */
double geomean(const std::vector<double> &values);

/**
 * Speedups of @p subject over @p baseline per workload (baseline
 * cycles / subject cycles), in profile order, plus the geomean
 * appended last.
 */
std::vector<double>
speedups(const CycleTable &table, const std::string &baseline,
         const std::string &subject,
         const std::vector<WorkloadProfile> &profiles);

/**
 * Render a speedup table: one row per architecture (normalized to
 * @p normalize_to), columns per workload plus GM — the layout of
 * Figs. 11/12/14/17.
 */
std::string
renderSpeedupTable(const CycleTable &table,
                   const std::string &normalize_to,
                   const std::vector<std::string> &subjects,
                   const std::vector<WorkloadProfile> &profiles);

/** All 13 profiles in paper order (cached after the first call —
 *  golden runs take a moment). */
const std::vector<WorkloadProfile> &allProfiles();

/** The 10 intensive-control-flow profiles only. */
std::vector<WorkloadProfile> intensiveProfiles();

} // namespace marionette

#endif // MARIONETTE_MODEL_EVAL_H
