#include "model/arch_model.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "compiler/assignment.h"
#include "sim/logging.h"

namespace marionette
{

namespace
{

/** Which operator footprint a branch-handling policy pays. */
enum class Footprint
{
    Actual,      ///< Taken-path only (idealized).
    Predicated,  ///< Both lanes wired in space (von Neumann).
    Merged       ///< Lanes share one PE set (Marionette, Fig. 7b).
};

/** Per-architecture cost semantics. */
struct CostSpec
{
    Footprint footprint = Footprint::Actual;
    /** Innermost-first PE allocation (Agile) vs. static partition. */
    bool agilePlan = false;
    /** Added to every iteration (per-token configuration etc.). */
    double iiTax = 0.0;
    /** Recurrence chain crossing a *control-bound* branch (lanes
     *  with side effects), added to the execute latency. */
    double branchChainExtra = 0.0;
    /** Recurrence through an if-converted Select lane, added to
     *  the execute latency (identical for most architectures). */
    double selectChainExtra = 1.0;
    /** Plain data recurrence chain, added to the execute latency. */
    double dataChainExtra = 0.0;
    /** Per-iteration cost per branch decision (e.g. NoC steers). */
    double perIterBranchTax = 0.0;
    /** Added to the pipeline fill on every loop-round start. */
    double roundOverhead = 0.0;
    /** Control FIFOs decouple rounds: startup paid once, then a
     *  one-cycle bubble per round (Agile / REVEL streams). */
    bool decoupledRounds = false;
    /** Outer-loop body work overlaps resident inner pipelines. */
    bool overlapOuter = false;
    /** Outer loops serialize onto a single dataflow PE (REVEL). */
    bool outerOnSinglePe = false;
    /** Systolic sub-array size for innermost loops (REVEL). */
    int innerPes = 0;
    /** Cost multiplier for top-level (host-side) blocks. */
    double topBlockFactor = 1.0;
};

double
footprintOf(const LoopSummary &l, Footprint f)
{
    switch (f) {
      case Footprint::Actual:
        return std::max(1.0, l.opsPerIter);
      case Footprint::Predicated:
        return std::max(1.0, l.opsPerIterPredicated);
      case Footprint::Merged:
        return std::max(1.0, l.opsPerIterMerged);
    }
    return 1.0;
}

/** Per-loop planned pipeline shape. */
struct LoopPlan
{
    double pes = 1.0;
    double iiData = 1.0;
};

/**
 * Static partition: every loop's pipeline is resident for the whole
 * kernel, sharing the array proportionally to footprint (Sec. 3's
 * pathology: outer-loop PEs pinned and idle).
 */
std::map<int, LoopPlan>
staticPlan(const KernelStructure &ks, Footprint f, int num_pes)
{
    std::map<int, LoopPlan> plan;
    double total = 0.0;
    for (const LoopSummary &l : ks.loops)
        total += footprintOf(l, f);
    if (total <= 0)
        total = 1;
    for (const LoopSummary &l : ks.loops) {
        double w = footprintOf(l, f);
        LoopPlan p;
        p.pes = std::max(1.0, std::floor(num_pes * w / total));
        p.pes = std::min(p.pes, w);
        p.iiData = std::ceil(w / p.pes);
        plan[l.loopId] = p;
    }
    return plan;
}

/**
 * Agile innermost-first allocation (Fig. 8): innermost loops get
 * spatial mappings (II=1 when they fit); outer loops are reshaped
 * (time-extended) onto leftover PEs minimizing PE waste, sharing
 * with resident inner pipelines when the array is exhausted.
 */
std::map<int, LoopPlan>
agilePlanOf(const KernelStructure &ks, Footprint f, int num_pes)
{
    std::map<int, LoopPlan> plan;
    std::vector<int> order;
    for (const LoopSummary &l : ks.loops)
        order.push_back(l.loopId);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return ks.loop(a).depth > ks.loop(b).depth;
    });

    int budget = num_pes;
    for (int id : order) {
        const LoopSummary &l = ks.loop(id);
        int w = static_cast<int>(
            std::ceil(footprintOf(l, f)));
        LoopPlan p;
        if (l.innermost() && w <= budget) {
            p.pes = w;
            p.iiData = 1.0;
            budget -= w;
        } else if (budget > 0) {
            // Innermost pipelines are performance-critical: take
            // the lowest-II reshape that fits.  Outer loops execute
            // rarely, so they take the minimum-waste fold (the
            // Fig. 8 criterion for leftover PEs).
            ReshapeOption opt =
                [&] {
                    auto opts = reshapeOptions(w, budget);
                    MARIONETTE_ASSERT(!opts.empty(),
                                      "no reshape for %d ops", w);
                    ReshapeOption best = opts.front();
                    if (!l.innermost()) {
                        for (const ReshapeOption &o : opts)
                            if (o.waste < best.waste)
                                best = o;
                    }
                    return best;
                }();
            p.pes = opt.pes;
            p.iiData = opt.ii;
            budget -= opt.pes;
        } else {
            // Share the inner pipelines' PEs in the time domain.
            double share = std::max(1.0, num_pes / 2.0);
            p.pes = share;
            p.iiData = std::ceil(w / share) + 1.0;
        }
        plan[id] = p;
    }
    return plan;
}

/** The generic cost engine all concrete models instantiate. */
class GenericModel : public ArchModel
{
  public:
    GenericModel(std::string name, const ModelParams &params,
                 const CostSpec &spec)
        : ArchModel(params), name_(std::move(name)), spec_(spec)
    {}

    std::string name() const override { return name_; }

    ModelResult
    run(const WorkloadProfile &profile) const override
    {
        KernelStructure ks = analyzeStructure(profile);
        const CostSpec &s = spec_;
        const ModelParams &p = params_;

        // ---- Per-loop PE allocation. ----
        std::map<int, LoopPlan> plan;
        if (s.outerOnSinglePe) {
            // REVEL: innermost loops share the systolic sub-array,
            // outer loops serialize on the one dataflow PE.
            double inner_total = 0.0;
            for (const LoopSummary &l : ks.loops)
                if (l.innermost())
                    inner_total += footprintOf(l, s.footprint);
            if (inner_total <= 0)
                inner_total = 1;
            for (const LoopSummary &l : ks.loops) {
                double w = footprintOf(l, s.footprint);
                LoopPlan lp;
                if (l.innermost()) {
                    lp.pes = std::max(
                        1.0, std::floor(s.innerPes * w /
                                        inner_total));
                    lp.pes = std::min(lp.pes, w);
                    lp.iiData = std::ceil(w / lp.pes);
                } else {
                    lp.pes = 1.0;
                    // Serialized on the tagged-dataflow PE; each
                    // operator needs a triggered instruction slot.
                    lp.iiData = w * 2.2;
                }
                plan[l.loopId] = lp;
            }
        } else if (s.agilePlan) {
            plan = agilePlanOf(ks, s.footprint, p.numPes);
        } else {
            plan = staticPlan(ks, s.footprint, p.numPes);
        }

        // ---- Per-loop II and startup. ----
        std::map<int, double> ii, startup, bodyCost, bubble;
        for (const LoopSummary &l : ks.loops) {
            const LoopPlan &lp = plan[l.loopId];
            double ii_dep = 0.0;
            if (l.dependence.carried) {
                if (l.dependence.macOnly)
                    ii_dep = 1.0;
                else if (l.dependence.viaBranch)
                    ii_dep = p.execLat +
                             (l.dependence.selectable
                                  ? s.selectChainExtra
                                  : s.branchChainExtra);
                else
                    ii_dep = p.execLat + s.dataChainExtra;
            }
            double ii_l =
                std::max({1.0, lp.iiData, ii_dep}) + s.iiTax +
                s.perIterBranchTax * l.branchesPerIter;
            double fill = l.depthPerIter * p.execLat;
            ii[l.loopId] = ii_l;
            // Non-decoupled pipelines also drain between rounds.
            double drain = s.decoupledRounds ? 0.0 : 0.8 * fill;
            startup[l.loopId] = fill + drain + s.roundOverhead;
            bodyCost[l.loopId] =
                static_cast<double>(l.iterations) * ii_l;
            // A dependence-limited (serial) loop gains little from
            // FIFO decoupling: its recurrence, not the round
            // startup, sets the pace ("CRC, ADPCM, Merge Sort and
            // LDPC cannot be well pipelined. Therefore, Agile PE
            // Assignment cannot create a significant
            // acceleration", Sec. 7.3).
            bool serial =
                l.dependence.carried && !l.dependence.macOnly;
            bubble[l.loopId] =
                serial ? std::max(1.0, 0.6 * startup[l.loopId])
                       : 1.0;
        }

        // ---- Roll up the loop tree. ----
        std::map<int, double> total;
        // Process deepest-first so children are done before parents.
        std::vector<int> order;
        for (const LoopSummary &l : ks.loops)
            order.push_back(l.loopId);
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            return ks.loop(a).depth > ks.loop(b).depth;
        });
        for (int id : order) {
            const LoopSummary &l = ks.loop(id);
            double rounds =
                static_cast<double>(std::max<std::uint64_t>(
                    1, l.rounds));
            double children = 0.0;
            for (int c : l.children)
                children += total[c];
            double own = bodyCost[id];
            double t;
            if (s.decoupledRounds) {
                // FIFO-decoupled rounds: one startup, then a
                // per-round bubble (one cycle for pipelineable
                // loops, most of the startup for serial ones).
                double starts =
                    startup[id] + (rounds - 1.0) * bubble[id];
                t = s.overlapOuter
                        ? starts + std::max(own, children)
                        : starts + own + children;
            } else {
                t = rounds * startup[id] + own + children;
            }
            total[id] = t;
        }

        double cycles = 0.0;
        for (int root : ks.rootLoops())
            cycles += total[root];
        for (const TopBlock &tb : ks.topBlocks)
            cycles += static_cast<double>(tb.execs) * tb.depth *
                      p.execLat * s.topBlockFactor;
        cycles = std::max(cycles, 1.0);

        // ---- Metrics. ----
        ModelResult r;
        r.cycles = cycles;
        double useful = ks.totalOpExecutions * p.execLat;
        r.peUtilization =
            std::min(1.0, useful / (p.numPes * cycles));

        // Outer-BB PE utilization (Fig. 15 left): PEs pinned to
        // non-innermost loops.  Under Agile those PEs co-host inner
        // pipelines, so they observe the whole-array utilization.
        double outer_pes = 0.0, outer_work = 0.0;
        for (const LoopSummary &l : ks.loops) {
            if (l.innermost())
                continue;
            outer_pes += plan[l.loopId].pes;
            outer_work += static_cast<double>(l.iterations) *
                          l.opsPerIter * p.execLat;
        }
        if (outer_pes > 0) {
            r.outerBbPeUtil =
                (s.agilePlan || s.overlapOuter)
                    ? r.peUtilization
                    : std::min(1.0, outer_work /
                                        (outer_pes * cycles));
        }

        // Pipeline utilization (Fig. 15 right): initiations over
        // pipeline-busy cycles across innermost loops.
        double inits = 0.0, busy = 0.0;
        for (const LoopSummary &l : ks.loops) {
            if (!l.innermost())
                continue;
            double rounds =
                static_cast<double>(std::max<std::uint64_t>(
                    1, l.rounds));
            inits += static_cast<double>(l.iterations);
            busy += bodyCost.at(l.loopId) +
                    (s.decoupledRounds
                         ? startup.at(l.loopId) +
                               (rounds - 1.0) * bubble.at(l.loopId)
                         : rounds * startup.at(l.loopId));
        }
        if (busy > 0)
            r.pipelineUtil = std::min(1.0, inits / busy);
        return r;
    }

  private:
    std::string name_;
    CostSpec spec_;
};

} // namespace

std::unique_ptr<ArchModel>
makeVonNeumannPe(const ModelParams &p)
{
    CostSpec s;
    s.footprint = Footprint::Predicated;
    // Side-effecting lanes need predicated stores plus the join
    // select, lengthening the recurrence.
    s.branchChainExtra = 4.0;
    s.dataChainExtra = 0.0;
    s.roundOverhead = p.ccuRoundTrip; // CCU per loop round.
    s.topBlockFactor = 1.5;           // CCU-mediated block starts.
    return std::make_unique<GenericModel>("vonNeumannPE", p, s);
}

std::unique_ptr<ArchModel>
makeDataflowPe(const ModelParams &p)
{
    CostSpec s;
    s.footprint = Footprint::Merged; // tags steer both lanes.
    s.iiTax = p.configLat; // per-token configuration (Fig. 2b).
    s.branchChainExtra = 4.0; // tag rides the data path.
    s.selectChainExtra = p.configLat + 1.0;
    s.dataChainExtra = p.configLat;
    s.roundOverhead = p.dataNetLat; // control rides the data mesh.
    return std::make_unique<GenericModel>("dataflowPE", p, s);
}

std::unique_ptr<ArchModel>
makeMarionette(const ModelParams &p, const Features &f)
{
    CostSpec s;
    s.footprint = Footprint::Merged;
    double ctrl_path =
        f.controlNetwork ? p.ctrlNetLat : p.dataNetLat;
    // Proactive configuration overlaps the transfer+configure with
    // the branch PE's execute stage; roughly half of the remainder
    // pipelines against the lane's own data path.
    double hide = f.proactiveConfig ? p.execLat : 0.0;
    double cfg = f.proactiveConfig ? 0.5 : p.configLat + 1.0;
    s.branchChainExtra =
        0.35 * std::max(0.0, ctrl_path - hide) + cfg;
    s.dataChainExtra = 0.0;
    s.roundOverhead =
        std::max(1.0, ctrl_path + p.configLat - hide);
    s.agilePlan = f.agileAssignment;
    s.decoupledRounds = f.agileAssignment;
    s.overlapOuter = f.agileAssignment;
    std::string name = "Marionette";
    if (!f.proactiveConfig)
        name += "-noProactive";
    if (!f.controlNetwork)
        name += "-noCtrlNet";
    if (!f.agileAssignment)
        name += "-noAgile";
    return std::make_unique<GenericModel>(name, p, s);
}

std::unique_ptr<ArchModel>
makeSoftbrain(const ModelParams &p)
{
    CostSpec s;
    s.footprint = Footprint::Predicated;
    s.branchChainExtra = 5.0; // stream-level select.
    s.dataChainExtra = 0.0;
    // Host processor issues stream commands per round.
    s.roundOverhead = p.ccuRoundTrip * 2.25;
    s.topBlockFactor = 2.5; // scalar work on the host core.
    return std::make_unique<GenericModel>("Softbrain", p, s);
}

std::unique_ptr<ArchModel>
makeTia(const ModelParams &p)
{
    CostSpec s;
    s.footprint = Footprint::Merged;
    s.iiTax = 1.5; // triggered-instruction scheduler per datum.
    s.branchChainExtra = 4.0; // local tag check, still coupled.
    s.selectChainExtra = 2.5;
    s.dataChainExtra = 1.7;
    s.roundOverhead = 8.0; // autonomous, but tag-driven restart.
    return std::make_unique<GenericModel>("TIA", p, s);
}

std::unique_ptr<ArchModel>
makeRevel(const ModelParams &p)
{
    CostSpec s;
    s.footprint = Footprint::Predicated; // systolic lanes predicate.
    s.innerPes = p.numPes - 1; // 15 systolic + 1 dataflow PE.
    s.outerOnSinglePe = true;
    s.branchChainExtra = 2.0;
    s.dataChainExtra = 0.0;
    s.roundOverhead = 5.0; // stream re-issue between rounds.
    s.decoupledRounds = true; // inductive dataflow decoupling.
    // The single dataflow PE runs ahead only a little: outer-loop
    // work is *not* fully hidden (the fixed-resource mismatch of
    // Sec. 8, "Spatial pipelines on multiple BBs").
    return std::make_unique<GenericModel>("REVEL", p, s);
}

std::unique_ptr<ArchModel>
makeRiptide(const ModelParams &p)
{
    CostSpec s;
    s.footprint = Footprint::Actual; // control ops live in the NoC.
    s.branchChainExtra = 3.5;        // NoC steer latency.
    s.selectChainExtra = 2.0;        // steers traverse the NoC too.
    s.dataChainExtra = 1.0;          // NoC-mediated operands.
    s.perIterBranchTax = 1.1;        // steers share NoC bandwidth.
    s.roundOverhead = 4.0;
    return std::make_unique<GenericModel>("RipTide", p, s);
}

} // namespace marionette
