/**
 * @file
 * Control-flow capability matrix (paper Table 3): which
 * architectures can autonomously control other PEs, own a
 * peer-to-peer control path, and decouple control from data in
 * time.
 */

#ifndef MARIONETTE_MODEL_CAPABILITY_H
#define MARIONETTE_MODEL_CAPABILITY_H

#include <string>
#include <vector>

namespace marionette
{

/** One architecture's control-flow capabilities. */
struct Capability
{
    std::string architecture;
    /** Can a PE autonomously change other PEs' configuration? */
    bool autonomous = false;
    /** Is there a dedicated peer-to-peer control flow path? */
    bool peerToPeer = false;
    /** Is control temporally loosely-coupled with dataflow? */
    bool looselyCoupled = false;
};

/** Table 3's rows. */
const std::vector<Capability> &capabilityMatrix();

/** Render Table 3. */
std::string renderCapabilityMatrix();

} // namespace marionette

#endif // MARIONETTE_MODEL_CAPABILITY_H
