#include "model/structure.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "compiler/predication.h"
#include "sim/logging.h"

namespace marionette
{

const LoopSummary &
KernelStructure::loop(int id) const
{
    MARIONETTE_ASSERT(id >= 0 &&
                          id < static_cast<int>(loops.size()),
                      "bad loop id %d", id);
    return loops[static_cast<std::size_t>(id)];
}

std::vector<int>
KernelStructure::rootLoops() const
{
    std::vector<int> out;
    for (const LoopSummary &l : loops)
        if (l.parent < 0)
            out.push_back(l.loopId);
    return out;
}

namespace
{

/** Outputs that are loop plumbing, not data recurrences. */
bool
isPlumbingName(const std::string &name)
{
    return name == "x" || name == "continue" || name == "iv";
}

LoopDependence
analyzeDependence(const Cdfg &cdfg, const LoopInfo &loops,
                  int loop_id, const std::vector<BodyBlock> &body,
                  BlockId header)
{
    LoopDependence dep;
    (void)loops;
    (void)loop_id;

    // Collect input names consumed anywhere in the loop.
    std::set<std::string> consumed;
    auto collect = [&](BlockId b) {
        for (const DfgInput &in : cdfg.block(b).dfg.inputs())
            consumed.insert(in.name);
    };
    collect(header);
    for (const BodyBlock &bb : body)
        collect(bb.block);

    // A loop-carried dependence is a body output feeding a consumed
    // name (the builder names recurrences consistently: "crc",
    // "sum", "i1", ...).
    bool all_lanes_selectable = true;
    for (const BodyBlock &bb : body) {
        const Dfg &dfg = cdfg.block(bb.block).dfg;
        for (const DfgOutput &out : dfg.outputs()) {
            if (isPlumbingName(out.name))
                continue;
            if (!consumed.count(out.name))
                continue;
            dep.carried = true;
            if (bb.isBranchTarget) {
                dep.viaBranch = true;
                // A lane that merely *chooses* values (only Copy /
                // Const nodes) is if-converted to Select by every
                // compiler and the recurrence stays on the data
                // path.  Lanes that compute or touch memory keep
                // the control transfer on the recurrence.
                for (const DfgNode &n : dfg.nodes()) {
                    if (n.op != Opcode::Copy &&
                        n.op != Opcode::Const)
                        all_lanes_selectable = false;
                }
            }
            if (dfg.node(out.producer).op != Opcode::Mac)
                dep.macOnly = false;
        }
    }
    if (!dep.carried)
        dep.macOnly = false;
    dep.selectable = dep.viaBranch && all_lanes_selectable;
    return dep;
}

} // namespace

KernelStructure
analyzeStructure(const WorkloadProfile &profile)
{
    KernelStructure ks;
    const Cdfg &cdfg = profile.cdfg;
    const LoopInfo &loops = profile.loops;

    auto pred_counts = predicatedOpCounts(cdfg);

    // Branch-target marking.
    std::vector<bool> is_target(
        static_cast<std::size_t>(cdfg.numBlocks()), false);
    for (const CfgEdge &e : cdfg.edges())
        if (e.kind == EdgeKind::Taken ||
            e.kind == EdgeKind::NotTaken)
            is_target[static_cast<std::size_t>(e.dst)] = true;

    for (const Loop &loop : loops.loops()) {
        LoopSummary ls;
        ls.loopId = loop.id;
        ls.header = loop.header;
        ls.depth = loop.depth;
        ls.parent = loop.parent;
        ls.children = loop.children;
        ls.rounds = profile.roundsOf(loop.header);
        ls.iterations = profile.iterationsOf(loop.header);

        double iters = static_cast<double>(
            std::max<std::uint64_t>(1, ls.iterations));

        // Merged-lane accounting (Fig. 7b): branch targets pair up;
        // the pair occupies max(lane) PEs in Marionette.
        std::map<BlockId, int> merged = pred_counts;
        for (const BasicBlock &bb : cdfg.blocks()) {
            if (bb.kind != BlockKind::Branch)
                continue;
            int t_ops = 0, f_ops = 0;
            for (const CfgEdge &e : cdfg.successors(bb.id)) {
                if (e.kind == EdgeKind::Taken)
                    t_ops = cdfg.block(e.dst).dfg.numNodes();
                if (e.kind == EdgeKind::NotTaken)
                    f_ops = cdfg.block(e.dst).dfg.numNodes();
            }
            merged[bb.id] = bb.dfg.numNodes() +
                            std::max(t_ops, f_ops);
        }

        for (BlockId b : loop.blocks) {
            if (b == loop.header)
                continue;
            if (loops.loopOf(b) != loop.id)
                continue; // belongs to an inner loop.
            BodyBlock body;
            body.block = b;
            body.ops = cdfg.block(b).dfg.numNodes();
            body.depth = cdfg.block(b).dfg.criticalPathLength();
            body.isBranch =
                cdfg.block(b).kind == BlockKind::Branch;
            body.isBranchTarget =
                is_target[static_cast<std::size_t>(b)];
            body.freq =
                static_cast<double>(profile.trace.executions(b)) /
                iters;
            ls.body.push_back(body);

            ls.opsPerIter += body.freq * body.ops;
            ls.depthPerIter += body.freq * body.depth;
            if (body.isBranch)
                ls.branchesPerIter += body.freq;
            // Predicated / merged footprints use frequency 1 for
            // branch lanes (they are wired in space), charged at
            // the branch block.
            auto pit = pred_counts.find(b);
            double pfreq = body.isBranchTarget ? 0.0
                          : body.isBranch
                              ? 1.0
                              : std::min(1.0, body.freq);
            if (pit != pred_counts.end())
                ls.opsPerIterPredicated += pfreq * pit->second;
            auto mit = merged.find(b);
            if (mit != merged.end())
                ls.opsPerIterMerged += pfreq * mit->second;
        }
        // The loop header itself contributes its bookkeeping ops.
        {
            int hops = cdfg.block(loop.header).dfg.numNodes();
            ls.opsPerIter += hops;
            ls.opsPerIterPredicated += hops;
            ls.opsPerIterMerged += hops;
            ls.depthPerIter += 1;
        }

        ls.dependence = analyzeDependence(cdfg, loops, loop.id,
                                          ls.body, loop.header);
        ks.loops.push_back(std::move(ls));
    }

    // Top-level blocks.
    for (const BasicBlock &bb : cdfg.blocks()) {
        if (loops.loopOf(bb.id) >= 0)
            continue;
        TopBlock tb;
        tb.block = bb.id;
        tb.execs = profile.trace.executions(bb.id);
        tb.ops = bb.dfg.numNodes();
        tb.depth = bb.dfg.criticalPathLength();
        if (tb.execs > 0)
            ks.topBlocks.push_back(tb);
    }

    for (const LoopSummary &l : ks.loops)
        ks.totalOpExecutions +=
            static_cast<double>(l.iterations) * l.opsPerIter;
    for (const TopBlock &tb : ks.topBlocks)
        ks.totalOpExecutions +=
            static_cast<double>(tb.execs) * tb.ops;

    return ks;
}

std::string
KernelStructure::toString(const Cdfg &cdfg) const
{
    std::ostringstream out;
    for (const LoopSummary &l : loops) {
        out << "loop " << l.loopId << " '"
            << cdfg.block(l.header).name << "' depth=" << l.depth
            << " rounds=" << l.rounds << " iters=" << l.iterations
            << " ops/iter=" << l.opsPerIter
            << " pred=" << l.opsPerIterPredicated
            << " merged=" << l.opsPerIterMerged
            << " br/iter=" << l.branchesPerIter << " dep="
            << (l.dependence.carried
                    ? (l.dependence.viaBranch ? "branch"
                       : l.dependence.macOnly ? "mac"
                                              : "data")
                    : "none")
            << '\n';
    }
    for (const TopBlock &tb : topBlocks)
        out << "top '" << cdfg.block(tb.block).name
            << "' execs=" << tb.execs << " ops=" << tb.ops << '\n';
    return out.str();
}

} // namespace marionette
