/**
 * @file
 * Post-route scheduled-cycle model.
 *
 * The analytic Marionette model (arch_model.h) predicts from the
 * workload's loop structure alone and knows nothing about where the
 * compiler actually put things.  This model closes that gap: it is
 * fed the route pass's *derived* timing — per-phase recurrence
 * initiation intervals, pipeline fill latencies, drain bounds and
 * the multicast route trees' busiest-link traffic — and folds them
 * into the cycle count the placed-and-routed kernel should sustain:
 *
 *   scheduled = max(sum_p trips_p * max(1, II_p) + fill_p,
 *                   max_link_load)
 *             + sum drains + configuration overhead
 *
 * The throughput term is the steady-state pipeline bound; the link
 * term is the bandwidth bound (a link carrying L words needs at
 * least L cycles).  Because every input is something the machine
 * charges by construction (shared MeshGeometry/MeshRouter), the
 * estimate lands within a small factor of the mapped cycles —
 * paper_eval reports the ratio per kernel.
 */

#ifndef MARIONETTE_MODEL_SCHEDULE_MODEL_H
#define MARIONETTE_MODEL_SCHEDULE_MODEL_H

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace marionette
{

/** Routed timing of one flattened phase, as the schedule sees it. */
struct ScheduledPhase
{
    /** Generator trip count (after unroll striping). */
    std::uint64_t trips = 0;
    /** Steady-state initiation interval (route pass recurrence II,
     *  slack-adjusted); 0 or 1 both mean fully pipelined. */
    Cycles initiationInterval = 0;
    /** Pipeline fill: the longest feed-forward path latency. */
    Cycles fillLatency = 0;
};

/** Everything the scheduled-cycle estimate consumes. */
struct ScheduleModelInput
{
    std::vector<ScheduledPhase> phases;
    /** Drain-generator trip counts per serial phase boundary. */
    std::vector<Cycles> drainCycles;
    /** Busiest predicted link traffic (multicast route trees). */
    std::uint64_t maxLinkLoad = 0;
    /** Configuration / boot overhead in cycles. */
    Cycles configCycles = 0;
};

/** The scheduled-cycle estimate for one placed-and-routed kernel. */
double scheduledCycleEstimate(const ScheduleModelInput &in);

/**
 * Default cycle predictor for a *mapped* kernel: prefer the
 * post-route scheduled estimate whenever the compile produced one —
 * it is derived from the placement and routes the machine actually
 * runs, so it tracks mapped cycles much more tightly than the
 * structure-only analytic model — and fall back to the analytic
 * estimate for kernels that never reached the route pass.  The
 * sweep layer reports this as KernelSweepResult::modelEstimate, and
 * paper_eval's coverage gate bounds the mapped-to-scheduled ratio
 * drift.
 */
inline double
preferredCycleEstimate(double scheduled, double analytic)
{
    return scheduled > 0.0 ? scheduled : analytic;
}

} // namespace marionette

#endif // MARIONETTE_MODEL_SCHEDULE_MODEL_H
