#include "model/capability.h"

#include <iomanip>
#include <sstream>

namespace marionette
{

const std::vector<Capability> &
capabilityMatrix()
{
    static const std::vector<Capability> matrix = {
        // Softbrain: host processor orchestrates configuration.
        {"Softbrain", false, false, false},
        // TIA: triggered instructions let tags steer peers, but the
        // tag rides the data token (coupled, no dedicated path).
        {"TIA", true, false, false},
        {"DySER", false, false, false},
        {"Plasticine", false, false, false},
        {"RipTide", false, false, false},
        // Marionette: the decoupled control flow plane (Sec. 4).
        {"Marionette", true, true, true},
    };
    return matrix;
}

std::string
renderCapabilityMatrix()
{
    std::ostringstream out;
    out << std::left << std::setw(14) << "Architecture"
        << std::setw(14) << "Autonomous" << std::setw(14)
        << "PeerToPeer" << std::setw(16) << "LooselyCoupled"
        << '\n';
    for (const Capability &c : capabilityMatrix()) {
        out << std::left << std::setw(14) << c.architecture
            << std::setw(14) << (c.autonomous ? "yes" : "no")
            << std::setw(14) << (c.peerToPeer ? "yes" : "no")
            << std::setw(16) << (c.looselyCoupled ? "yes" : "no")
            << '\n';
    }
    return out.str();
}

} // namespace marionette
