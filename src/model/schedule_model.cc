#include "model/schedule_model.h"

#include <algorithm>

namespace marionette
{

double
scheduledCycleEstimate(const ScheduleModelInput &in)
{
    // Throughput bound: each phase initiates trips times at its
    // recurrence-limited interval, after filling its pipeline.
    double compute = 0.0;
    for (const ScheduledPhase &p : in.phases) {
        const double ii = static_cast<double>(
            std::max<Cycles>(1, p.initiationInterval));
        compute += static_cast<double>(p.trips) * ii +
                   static_cast<double>(p.fillLatency);
    }

    // Bandwidth bound: the busiest link forwards one word per
    // cycle, so it alone needs maxLinkLoad cycles.
    double cycles =
        std::max(compute, static_cast<double>(in.maxLinkLoad));

    for (Cycles d : in.drainCycles)
        cycles += static_cast<double>(d);
    cycles += static_cast<double>(in.configCycles);
    return cycles;
}

} // namespace marionette
