#include "model/taxonomy.h"

#include <iomanip>
#include <sstream>

namespace marionette
{

const std::vector<TaxonomyEntry> &
taxonomy()
{
    // Paper Table 2, verbatim mechanisms.
    static const std::vector<TaxonomyEntry> rows = {
        // ---- von Neumann PEs ----
        {"RICA", PeModelClass::VonNeumann,
         "A core processor that generates the overall "
         "configuration signal.", 2007},
        {"DRP", PeModelClass::VonNeumann,
         "Switching all PE configurations via a finite state "
         "machine.", 2004},
        {"DySER", PeModelClass::VonNeumann,
         "Configuration update via external processor signal.",
         2012},
        {"FPCA", PeModelClass::VonNeumann,
         "External processor assignments.", 2014},
        {"DORA", PeModelClass::VonNeumann,
         "A counter determines the end and update of the "
         "configurations.", 2016},
        {"Plasticine", PeModelClass::VonNeumann,
         "A counter controls the distribution and execution of "
         "configurations.", 2017},
        {"Softbrain", PeModelClass::VonNeumann,
         "Processor fetches instruction from memory.", 2017},
        {"SPU", PeModelClass::VonNeumann,
         "Processor fetches instruction from memory.", 2019},
        {"MP-CGRA", PeModelClass::VonNeumann,
         "Distributed instruction counters.", 2022},
        {"DRIPS", PeModelClass::VonNeumann,
         "The centralized controller dynamically changes the map "
         "table.", 2022},
        {"RipTide", PeModelClass::VonNeumann,
         "Processor fetches instruction.", 2022},
        // ---- dataflow PEs ----
        {"TRIPS", PeModelClass::Dataflow,
         "An instruction window to determine instruction "
         "execution.", 2004},
        {"Wavescalar", PeModelClass::Dataflow,
         "According to the data, configurations are fetched to "
         "execute.", 2003},
        {"TIA", PeModelClass::Dataflow,
         "Scheduler selects instructions based on the input "
         "data.", 2013},
        {"T3", PeModelClass::Dataflow,
         "An instruction window to determine instruction "
         "execution.", 2013},
        {"SGMF", PeModelClass::Dataflow,
         "The corresponding thread is executed when the token "
         "arrives.", 2014},
        {"dMT-CGRA", PeModelClass::Dataflow,
         "An instruction window to determine instruction "
         "execution.", 2018},
    };
    return rows;
}

std::vector<TaxonomyEntry>
taxonomyOf(PeModelClass cls)
{
    std::vector<TaxonomyEntry> out;
    for (const TaxonomyEntry &e : taxonomy())
        if (e.cls == cls)
            out.push_back(e);
    return out;
}

std::string_view
peModelClassName(PeModelClass cls)
{
    return cls == PeModelClass::VonNeumann ? "von Neumann PE"
                                           : "dataflow PE";
}

std::string
renderTaxonomy()
{
    std::ostringstream out;
    for (PeModelClass cls :
         {PeModelClass::VonNeumann, PeModelClass::Dataflow}) {
        out << "-- " << peModelClassName(cls) << " --\n";
        for (const TaxonomyEntry &e : taxonomyOf(cls)) {
            out << std::left << std::setw(12) << e.architecture
                << ' ' << e.mechanism << '\n';
        }
    }
    return out.str();
}

} // namespace marionette
