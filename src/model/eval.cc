#include "model/eval.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "sim/logging.h"
#include "sim/sweep.h"
#include "workloads/kernels.h"

namespace marionette
{

CycleTable
runSuite(const std::vector<const ArchModel *> &models,
         const std::vector<WorkloadProfile> &profiles)
{
    CycleTable table;
    for (const ArchModel *m : models)
        for (const WorkloadProfile &p : profiles)
            table[m->name()][p.name] = m->run(p);
    return table;
}

CycleTable
runSuiteParallel(const std::vector<const ArchModel *> &models,
                 const std::vector<WorkloadProfile> &profiles,
                 const SweepRunner &runner)
{
    const int num_profiles = static_cast<int>(profiles.size());
    const int n = static_cast<int>(models.size()) * num_profiles;
    std::vector<ModelResult> cells = runner.map<ModelResult>(
        n, [&](int i) {
            const ArchModel *m = models[static_cast<std::size_t>(
                i / num_profiles)];
            const WorkloadProfile &p =
                profiles[static_cast<std::size_t>(i %
                                                  num_profiles)];
            return m->run(p);
        });
    CycleTable table;
    for (int i = 0; i < n; ++i) {
        const ArchModel *m = models[static_cast<std::size_t>(
            i / num_profiles)];
        const WorkloadProfile &p =
            profiles[static_cast<std::size_t>(i % num_profiles)];
        table[m->name()][p.name] =
            cells[static_cast<std::size_t>(i)];
    }
    return table;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        MARIONETTE_ASSERT(v > 0, "geomean of non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::vector<double>
speedups(const CycleTable &table, const std::string &baseline,
         const std::string &subject,
         const std::vector<WorkloadProfile> &profiles)
{
    std::vector<double> out;
    const auto &base = table.at(baseline);
    const auto &subj = table.at(subject);
    for (const WorkloadProfile &p : profiles)
        out.push_back(base.at(p.name).cycles /
                      subj.at(p.name).cycles);
    out.push_back(geomean(out));
    return out;
}

std::string
renderSpeedupTable(const CycleTable &table,
                   const std::string &normalize_to,
                   const std::vector<std::string> &subjects,
                   const std::vector<WorkloadProfile> &profiles)
{
    std::ostringstream out;
    out << std::left << std::setw(24) << "Architecture";
    for (const WorkloadProfile &p : profiles)
        out << std::right << std::setw(7) << p.name;
    out << std::right << std::setw(7) << "GM" << '\n';
    for (const std::string &s : subjects) {
        auto sp = speedups(table, normalize_to, s, profiles);
        out << std::left << std::setw(24) << s;
        for (double v : sp)
            out << std::right << std::fixed << std::setprecision(2)
                << std::setw(7) << v;
        out << '\n';
    }
    return out.str();
}

const std::vector<WorkloadProfile> &
allProfiles()
{
    static const std::vector<WorkloadProfile> profiles = [] {
        std::vector<WorkloadProfile> out;
        for (const Workload *w : allWorkloads())
            out.push_back(w->profile());
        return out;
    }();
    return profiles;
}

std::vector<WorkloadProfile>
intensiveProfiles()
{
    std::vector<WorkloadProfile> out;
    for (const WorkloadProfile &p : allProfiles())
        if (p.intensive)
            out.push_back(p);
    return out;
}

} // namespace marionette
