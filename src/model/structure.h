/**
 * @file
 * Kernel structure extraction for the trace-driven models.
 *
 * Distills a WorkloadProfile into the quantities every execution-
 * model needs: the loop tree with measured rounds/iterations, each
 * loop body's per-iteration block frequencies (branch directions
 * from the real trace), operator footprints under the different
 * branch-handling policies, and the loop-carried dependence
 * classification that decides whether a pipeline's II is footprint-
 * limited or dependence-limited (the "data-dependent pipeline II"
 * the paper observes on FFT and Viterbi, Sec. 7.3).
 */

#ifndef MARIONETTE_MODEL_STRUCTURE_H
#define MARIONETTE_MODEL_STRUCTURE_H

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace marionette
{

/** One block of a loop body with its measured frequency. */
struct BodyBlock
{
    BlockId block = invalidBlock;
    /** Executions per loop iteration (branch lanes are < 1). */
    double freq = 0.0;
    /** Operator count of the block. */
    int ops = 0;
    /** Critical path of the block's DFG. */
    int depth = 0;
    /** True when the block is a Branch block. */
    bool isBranch = false;
    /** True when reached through a Taken/NotTaken edge. */
    bool isBranchTarget = false;
};

/** How a loop's iterations depend on each other. */
struct LoopDependence
{
    /** Any loop-carried value dependence at all. */
    bool carried = false;
    /** The carried value is produced inside a branch lane, so the
     *  recurrence crosses a control decision every iteration. */
    bool viaBranch = false;
    /** Every carried producer is a Mac (hardware accumulation
     *  sustains II = 1 despite the recurrence). */
    bool macOnly = true;
    /** The branch lanes feeding the recurrence are small and free
     *  of side effects, so every compiler converts them to Select
     *  operators and the recurrence never leaves the data path. */
    bool selectable = false;
};

/** One loop with everything the models need. */
struct LoopSummary
{
    int loopId = -1;
    BlockId header = invalidBlock;
    int depth = 1;
    int parent = -1;
    std::vector<int> children;
    std::uint64_t rounds = 0;
    std::uint64_t iterations = 0;
    std::vector<BodyBlock> body;
    LoopDependence dependence;

    /** Taken-path operators per iteration. */
    double opsPerIter = 0.0;
    /** Operators per iteration under predication (both lanes). */
    double opsPerIterPredicated = 0.0;
    /** Operators per iteration with Marionette's merged branch
     *  lanes (max of the two lanes shares one PE set, Fig. 7b). */
    double opsPerIterMerged = 0.0;
    /** Branch decisions per iteration. */
    double branchesPerIter = 0.0;
    /** Critical path length per iteration (pipeline fill depth). */
    double depthPerIter = 0.0;
    /** True when the loop is innermost (no children). */
    bool innermost() const { return children.empty(); }
};

/** A top-level (outside all loops) block with its executions. */
struct TopBlock
{
    BlockId block = invalidBlock;
    std::uint64_t execs = 0;
    int ops = 0;
    int depth = 0;
};

/** The extracted structure of one kernel run. */
struct KernelStructure
{
    std::vector<LoopSummary> loops;
    std::vector<TopBlock> topBlocks;
    /** Total taken-path operator executions (useful-work anchor). */
    double totalOpExecutions = 0.0;

    const LoopSummary &loop(int id) const;
    /** Ids of loops without parents. */
    std::vector<int> rootLoops() const;

    std::string toString(const Cdfg &cdfg) const;
};

/** Build the structure from a profile. */
KernelStructure analyzeStructure(const WorkloadProfile &profile);

} // namespace marionette

#endif // MARIONETTE_MODEL_STRUCTURE_H
