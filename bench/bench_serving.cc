/**
 * @file
 * Serving-core throughput ladder (ISSUE 10 deliverable).
 *
 * Drives the multi-tenant ServeCore with a heavy synthetic open-loop
 * load — mixed kernel sizes, Zipf-skewed tenant mix — and reports
 * one rung per serving policy:
 *
 *   cold           every request pays a full compile + prepare
 *   program-cache  compiles served from the shared ProgramCache
 *   +snapshot      prepares served from SnapshotCache warm starts
 *   one-per-fabric small-kernel mix, one lane per fabric (baseline)
 *   +co-tenancy    same pool, each fabric carved into 4 regions
 *
 * Two throughput metrics, on purpose.  Wall-clock requests/sec
 * measures the *serving software* — compile and prepare elimination
 * — and backs the snapshot-vs-cold criterion.  Fabric-time
 * requests/sec divides served requests by the pool's simulated-time
 * makespan (max over fabrics of that fabric's occupied cycles, at
 * MachineConfig::clockHz); co-tenant regions of one fabric overlap
 * in simulated time, so this is the metric under which spatial
 * co-tenancy is a small-kernel throughput multiplier even on a
 * single-core simulation host.
 *
 * Every response is cross-validated against the kernel's goldens;
 * the ladder aborts if any response diverges.  Writes
 * BENCH_serving.json (leads with "schema_version" like every other
 * artifact of the shared report-writer convention).
 *
 * This binary has a custom main (no google-benchmark harness): the
 * measured quantity is a whole closed system, not a microbenchmark
 * loop.  --smoke runs a small correctness-gated load for CI.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/marionette.h"
#include "serve/server.h"
#include "sim/rng.h"

using namespace marionette;
using namespace marionette::serve;

namespace
{

MachineConfig
primaryFabric()
{
    MachineConfig big;
    big.rows = 10;
    big.cols = 10;
    big.scratchpadBytes = 512 * 1024;
    big.instrMemBytes = 64 * 1024;
    return big;
}

/** Strict integer parse: the whole string must be a number in
 *  [lo, hi] — garbage and out-of-range values are rejected. */
bool
parseCount(const char *text, long lo, long hi, int &out)
{
    if (*text == '\0')
        return false;
    char *end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (*end != '\0' || value < lo || value > hi)
        return false;
    out = static_cast<int>(value);
    return true;
}

/** One (workload, weight) entry of a synthetic mix. */
struct MixEntry
{
    const char *workload;
    double weight;
};

/** The open-loop request schedule: deterministic for a seed. */
std::vector<ServeRequest>
makeSchedule(const std::vector<MixEntry> &mix, int tenants,
             int requests, std::uint64_t seed)
{
    // Zipf(1.1) tenant popularity: tenant 0 dominates, the tail
    // still shows up — the shape serving stacks are sized for.
    std::vector<double> tenant_cdf(static_cast<std::size_t>(tenants));
    double total = 0;
    for (int t = 0; t < tenants; ++t) {
        total += 1.0 / std::pow(static_cast<double>(t + 1), 1.1);
        tenant_cdf[static_cast<std::size_t>(t)] = total;
    }
    std::vector<double> mix_cdf(mix.size());
    double mix_total = 0;
    for (std::size_t m = 0; m < mix.size(); ++m) {
        mix_total += mix[m].weight;
        mix_cdf[m] = mix_total;
    }

    Rng rng(seed);
    std::vector<ServeRequest> schedule;
    schedule.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        ServeRequest request;
        const double t_draw = rng.nextDouble() * total;
        int tenant = 0;
        while (tenant + 1 < tenants &&
               t_draw > tenant_cdf[static_cast<std::size_t>(tenant)])
            ++tenant;
        request.tenant = "t" + std::to_string(tenant);
        const double m_draw = rng.nextDouble() * mix_total;
        std::size_t pick = 0;
        while (pick + 1 < mix.size() && m_draw > mix_cdf[pick])
            ++pick;
        request.workload = mix[pick].workload;
        request.options.unrollFactor = 1;
        schedule.push_back(std::move(request));
    }
    return schedule;
}

struct RungResult
{
    std::string name;
    int requests = 0;
    int served = 0;
    int failed = 0;
    int backpressured = 0;
    int warmStarts = 0;
    bool bitExact = true;
    double wallSeconds = 0;
    double wallRps = 0;
    double p50Millis = 0;
    double p99Millis = 0;
    std::uint64_t makespanCycles = 0;
    double fabricRps = 0;
    std::uint64_t programHits = 0;
    std::uint64_t programMisses = 0;
    SnapshotCache::Counters snapshots;
};

double
percentileMillis(std::vector<std::uint64_t> &micros, double p)
{
    if (micros.empty())
        return 0;
    std::sort(micros.begin(), micros.end());
    const std::size_t rank = std::min(
        micros.size() - 1,
        static_cast<std::size_t>(
            std::ceil(p * static_cast<double>(micros.size())) -
            1));
    return static_cast<double>(micros[rank]) / 1000.0;
}

RungResult
runRung(const std::string &name, const ServeOptions &options,
        const std::vector<ServeRequest> &schedule)
{
    RungResult rung;
    rung.name = name;
    rung.requests = static_cast<int>(schedule.size());

    ServeCore core(options);
    std::vector<std::future<ServeResponse>> futures;
    futures.reserve(schedule.size());

    const auto start = std::chrono::steady_clock::now();
    for (const ServeRequest &request : schedule) {
        std::future<ServeResponse> future;
        // Open loop with backpressure: when admission control
        // bounces a request the producer blocks until the queue
        // drains instead of dropping work.
        if (!core.trySubmit(request, future)) {
            ++rung.backpressured;
            future = core.submit(request);
        }
        futures.push_back(std::move(future));
    }
    core.drain();
    rung.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    std::vector<std::uint64_t> latencies;
    for (auto &future : futures) {
        const ServeResponse response = future.get();
        if (!response.served) {
            ++rung.failed;
            std::fprintf(stderr, "  [%s] FAILED: %s\n",
                         name.c_str(), response.error.c_str());
            continue;
        }
        ++rung.served;
        rung.warmStarts += response.warmStart ? 1 : 0;
        if (!response.validation.empty()) {
            rung.bitExact = false;
            std::fprintf(stderr, "  [%s] DIVERGED: %s\n",
                         name.c_str(),
                         response.validation.c_str());
        }
        latencies.push_back(response.queueMicros +
                            response.serviceMicros);
    }
    rung.wallRps = rung.wallSeconds > 0
                       ? rung.served / rung.wallSeconds
                       : 0;
    rung.p50Millis = percentileMillis(latencies, 0.50);
    rung.p99Millis = percentileMillis(latencies, 0.99);

    for (std::uint64_t cycles : core.fabricBusyCycles())
        rung.makespanCycles =
            std::max(rung.makespanCycles, cycles);
    if (rung.makespanCycles > 0) {
        const double sim_seconds =
            static_cast<double>(rung.makespanCycles) /
            options.fabric.clockHz;
        rung.fabricRps = rung.served / sim_seconds;
    }
    rung.programHits = core.programs().hits();
    rung.programMisses = core.programs().misses();
    rung.snapshots = core.snapshotCounters();
    return rung;
}

void
printRung(const RungResult &rung)
{
    std::printf(
        "%-16s %4d served %2d warm  %7.2fs wall %8.2f req/s  "
        "p50 %7.2fms p99 %7.2fms  makespan %9llu cy "
        "fabric %9.1f req/s %s\n",
        rung.name.c_str(), rung.served, rung.warmStarts,
        rung.wallSeconds, rung.wallRps, rung.p50Millis,
        rung.p99Millis,
        static_cast<unsigned long long>(rung.makespanCycles),
        rung.fabricRps, rung.bitExact ? "" : " NOT BIT-EXACT");
}

void
writeRungJson(std::ofstream &out, const RungResult &rung,
              bool last)
{
    out << "    {\n"
        << "      \"name\": \"" << rung.name << "\",\n"
        << "      \"requests\": " << rung.requests << ",\n"
        << "      \"served\": " << rung.served << ",\n"
        << "      \"failed\": " << rung.failed << ",\n"
        << "      \"backpressured\": " << rung.backpressured
        << ",\n"
        << "      \"warm_starts\": " << rung.warmStarts << ",\n"
        << "      \"bit_exact\": "
        << (rung.bitExact ? "true" : "false") << ",\n"
        << "      \"wall_seconds\": " << rung.wallSeconds << ",\n"
        << "      \"wall_requests_per_sec\": " << rung.wallRps
        << ",\n"
        << "      \"latency_p50_ms\": " << rung.p50Millis << ",\n"
        << "      \"latency_p99_ms\": " << rung.p99Millis << ",\n"
        << "      \"makespan_cycles\": " << rung.makespanCycles
        << ",\n"
        << "      \"fabric_requests_per_sec\": " << rung.fabricRps
        << ",\n"
        << "      \"program_cache_hits\": " << rung.programHits
        << ",\n"
        << "      \"program_cache_misses\": " << rung.programMisses
        << ",\n"
        << "      \"snapshot_hits\": " << rung.snapshots.hits
        << ",\n"
        << "      \"snapshot_misses\": " << rung.snapshots.misses
        << ",\n"
        << "      \"snapshot_saved_micros\": "
        << rung.snapshots.savedMicros << "\n"
        << "    }" << (last ? "\n" : ",\n");
}

void
usage()
{
    std::printf(
        "bench_serving [--smoke] [--requests=N] [--shards=N]\n"
        "              [--queue=N] [--seed=N] [--out=PATH]\n"
        "  --smoke      small correctness-gated load (CI)\n"
        "  --requests=N warm-start ladder size, 1..100000\n"
        "               (the co-tenancy rungs use 2x N)\n"
        "  --shards=N   fabrics in the pool, 0..256\n"
        "               (0 = auto-detect hardware concurrency)\n"
        "  --queue=N    admission queue capacity, 1..100000\n"
        "  --seed=N     schedule seed, 0..1000000\n"
        "  --out=PATH   report path (default BENCH_serving.json)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int requests = 120;
    int shards = 1;
    int queue = 64;
    int seed = 7;
    std::string out_path = "BENCH_serving.json";

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        bool ok = true;
        if (std::strcmp(arg, "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(arg, "--requests=", 11) == 0)
            ok = parseCount(arg + 11, 1, 100000, requests);
        else if (std::strncmp(arg, "--shards=", 9) == 0)
            ok = parseCount(arg + 9, 0, 256, shards);
        else if (std::strncmp(arg, "--queue=", 8) == 0)
            ok = parseCount(arg + 8, 1, 100000, queue);
        else if (std::strncmp(arg, "--seed=", 7) == 0)
            ok = parseCount(arg + 7, 0, 1000000, seed);
        else if (std::strncmp(arg, "--out=", 6) == 0)
            out_path = arg + 6;
        else {
            usage();
            return std::strcmp(arg, "--help") == 0 ? 0 : 1;
        }
        if (!ok) {
            std::fprintf(stderr, "bad value in '%s'\n", arg);
            usage();
            return 1;
        }
    }
    if (shards == 0) {
        const unsigned detected =
            std::thread::hardware_concurrency();
        shards = detected > 0 ? static_cast<int>(detected) : 1;
        std::printf("auto-detected %d shard%s\n", shards,
                    shards == 1 ? "" : "s");
    }
    if (smoke)
        requests = 16;

    const MachineConfig fabric = primaryFabric();

    // Mixed-size repeated-cell mix for the warm-start ladder: SI is
    // tiny (~2k cycles), CRC mid (~8.5k), ADPCM heavy on both the
    // compiler and the fabric (~68k cycles), SCD heavy on the
    // compiler (~200ms) but light on the fabric.
    const std::vector<MixEntry> mixed = {{"SI", 0.35},
                                         {"CRC", 0.20},
                                         {"ADPCM", 0.10},
                                         {"SCD", 0.35}};
    // Small-kernel mix for the co-tenancy rungs: kernels that fit a
    // quadrant (SI additionally needs the nonlinear quadrant).
    const std::vector<MixEntry> small = {{"SI", 0.50},
                                         {"CRC", 0.50}};

    const std::vector<ServeRequest> mixed_schedule = makeSchedule(
        mixed, 6, requests, static_cast<std::uint64_t>(seed));
    const std::vector<ServeRequest> small_schedule = makeSchedule(
        small, 6, smoke ? 24 : requests * 2,
        static_cast<std::uint64_t>(seed) + 1);

    ServeOptions base;
    base.fabric = fabric;
    base.fabrics = shards;
    base.regionsPerFabric = 1;
    base.queueCapacity = queue;

    std::printf("serving ladder: %d shard%s, queue %d, %zu + %zu "
                "requests\n",
                shards, shards == 1 ? "" : "s", queue,
                mixed_schedule.size(), small_schedule.size());

    std::vector<RungResult> rungs;

    ServeOptions cold = base;
    cold.programCache = false;
    cold.snapshots = false;
    rungs.push_back(runRung("cold", cold, mixed_schedule));
    printRung(rungs.back());

    ServeOptions pcache = base;
    pcache.snapshots = false;
    rungs.push_back(
        runRung("program-cache", pcache, mixed_schedule));
    printRung(rungs.back());

    rungs.push_back(runRung("+snapshot", base, mixed_schedule));
    printRung(rungs.back());

    rungs.push_back(
        runRung("one-per-fabric", base, small_schedule));
    printRung(rungs.back());

    ServeOptions cotenant = base;
    cotenant.regionsPerFabric = 4;
    rungs.push_back(
        runRung("+co-tenancy", cotenant, small_schedule));
    printRung(rungs.back());

    const double snapshot_vs_cold =
        rungs[0].wallRps > 0 ? rungs[2].wallRps / rungs[0].wallRps
                             : 0;
    const double cotenancy_ratio =
        rungs[3].fabricRps > 0
            ? rungs[4].fabricRps / rungs[3].fabricRps
            : 0;
    bool all_exact = true;
    int total_failed = 0;
    for (const RungResult &rung : rungs) {
        all_exact = all_exact && rung.bitExact;
        total_failed += rung.failed;
    }

    std::printf("snapshot vs cold (wall):        %.2fx\n",
                snapshot_vs_cold);
    std::printf("co-tenancy vs solo (fabric):    %.2fx\n",
                cotenancy_ratio);

    if (smoke) {
        // CI gate: correctness only — wall-clock ratios are too
        // noisy on shared runners to gate on.
        bool pass = all_exact && total_failed == 0;
        if (rungs[2].warmStarts == 0) {
            std::fprintf(stderr,
                         "smoke: no snapshot warm starts\n");
            pass = false;
        }
        if (rungs[4].p99Millis > 60000.0) {
            std::fprintf(stderr, "smoke: p99 over 60s\n");
            pass = false;
        }
        std::printf("smoke %s\n", pass ? "PASS" : "FAIL");
        return pass ? 0 : 1;
    }

    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write report '%s'\n",
                     out_path.c_str());
        return 1;
    }
    // Leads with schema_version per the shared report-writer
    // convention (examples/paper_eval.cpp).
    out << "{\n  \"schema_version\": 2,\n"
        << "  \"artifact\": \"serving\",\n"
        << "  \"shards\": " << shards << ",\n"
        << "  \"queue_capacity\": " << queue << ",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"rungs\": [\n";
    for (std::size_t r = 0; r < rungs.size(); ++r)
        writeRungJson(out, rungs[r], r + 1 == rungs.size());
    out << "  ],\n"
        << "  \"snapshot_vs_cold_wall_rps_ratio\": "
        << snapshot_vs_cold << ",\n"
        << "  \"cotenancy_fabric_throughput_ratio\": "
        << cotenancy_ratio << ",\n"
        << "  \"all_bit_exact\": "
        << (all_exact ? "true" : "false") << "\n}\n";
    out.close();
    std::printf("wrote serving report: %s\n", out_path.c_str());

    return (all_exact && total_failed == 0) ? 0 : 1;
}
