/**
 * @file
 * Fig. 13: control-network scalability — the relationship among
 * network stages, network delay (pipeline cycles) and critical-
 * path delay across frequency targets, from the 28 nm timing
 * model (substituting the paper's Synopsys DC synthesis sweeps).
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

void
printFig13()
{
    bench::banner(
        "Fig 13: network stages vs delay vs critical path",
        "latency grows mildly with stages and frequency; "
        "\"low increase in network latency is acceptable\"");
    std::printf("%s\n", toString(delaySweep()).c_str());
}

void
BM_TimingQuery(benchmark::State &state)
{
    int pes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        NetworkTiming t = timeControlNetwork(pes, 1.0);
        benchmark::DoNotOptimize(t.latencyCycles);
    }
}
BENCHMARK(BM_TimingQuery)->Arg(16)->Arg(256);

void
BM_FullSweep(benchmark::State &state)
{
    for (auto _ : state) {
        auto sweep = delaySweep();
        benchmark::DoNotOptimize(sweep.size());
    }
}
BENCHMARK(BM_FullSweep);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printFig13)
