/**
 * @file
 * Hot-path throughput of the cycle-accurate machine, reported as
 * simulated cycles per wall-clock second.
 *
 * Two extremes bracket the simulator's per-cycle cost:
 *
 *  - *idle-heavy*: a 16x16 array where only a 4-PE pipeline works
 *    and the other 252 PEs are unprogrammed.  This is the common
 *    shape of mapped kernels (most PEs idle most cycles) and the
 *    case activity-driven ticking targets.
 *  - *fully-active*: every PE of a 4x4 array fires every few
 *    cycles, so the active worklist is the whole array and the
 *    event-driven machinery must not cost anything.
 *
 * BENCH_hotpath.json records before/after numbers for the
 * activity-driven rework.
 */

#include "bench_common.h"

#include "compiler/program_builder.h"

namespace marionette
{
namespace
{

/** Loop generator -> 3-stage add chain -> output, on a big array. */
Program
idleHeavyKernel(const MachineConfig &config, Word iterations)
{
    ProgramBuilder b("idle_heavy", config);
    b.setNumOutputs(1);
    Instruction &gen = b.place(0, 0);
    gen.mode = SenderMode::LoopOp;
    gen.op = Opcode::Loop;
    gen.loopStart = 0;
    gen.loopBound = iterations;
    gen.dests = {DestSel::toPe(1, 0)};
    b.setEntry(0, 0);
    for (PeId pe = 1; pe <= 3; ++pe) {
        Instruction &in = b.place(pe, 0);
        in.mode = SenderMode::Dfg;
        in.op = Opcode::Add;
        in.a = OperandSel::channel(0);
        in.b = OperandSel::immediate(1);
        in.dests = {pe == 3 ? DestSel::toOutput(0)
                            : DestSel::toPe(pe + 1, 0)};
        b.setEntry(pe, 0);
    }
    return b.finish();
}

/** Every PE is a paced loop generator streaming to an output. */
Program
fullyActiveKernel(const MachineConfig &config, Word iterations)
{
    ProgramBuilder b("fully_active", config);
    b.setNumOutputs(config.numPes());
    for (PeId pe = 0; pe < config.numPes(); ++pe) {
        Instruction &gen = b.place(pe, 0);
        gen.mode = SenderMode::LoopOp;
        gen.op = Opcode::Loop;
        gen.loopStart = 0;
        gen.loopBound = iterations;
        gen.dests = {DestSel::toOutput(pe)};
        b.setEntry(pe, 0);
    }
    return b.finish();
}

MachineConfig
bigArrayConfig()
{
    MachineConfig config;
    config.rows = 16;
    config.cols = 16;
    config.nonlinearPes = 16;
    config.instrMemBytes = 64 * 1024;
    return config;
}

void
reportSimRate(benchmark::State &state, std::uint64_t sim_cycles)
{
    state.counters["sim_cycles_per_sec"] = benchmark::Counter(
        static_cast<double>(sim_cycles), benchmark::Counter::kIsRate);
}

void
BM_IdleHeavy(benchmark::State &state)
{
    MachineConfig config = bigArrayConfig();
    config.eventDrivenSim = state.range(0) != 0;
    Program prog = idleHeavyKernel(config, 50'000);
    MarionetteMachine m(config);
    std::uint64_t sim_cycles = 0;
    for (auto _ : state) {
        m.load(prog);
        RunResult r = m.run();
        sim_cycles += r.cycles;
        benchmark::DoNotOptimize(r.totalFires);
    }
    reportSimRate(state, sim_cycles);
}
BENCHMARK(BM_IdleHeavy)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"fast"})
    ->Unit(benchmark::kMillisecond);

void
BM_FullyActive(benchmark::State &state)
{
    MachineConfig config; // the 4x4 prototype.
    config.eventDrivenSim = state.range(0) != 0;
    Program prog = fullyActiveKernel(config, 50'000);
    MarionetteMachine m(config);
    std::uint64_t sim_cycles = 0;
    for (auto _ : state) {
        m.load(prog);
        RunResult r = m.run();
        sim_cycles += r.cycles;
        benchmark::DoNotOptimize(r.totalFires);
    }
    reportSimRate(state, sim_cycles);
}
BENCHMARK(BM_FullyActive)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"fast"})
    ->Unit(benchmark::kMillisecond);

/** The fast-forward target: an LDPC/VI-class long steady loop — a
 *  fully pipelined counted generator feeding a short add chain for
 *  hundreds of thousands of trips — with the phase metadata the
 *  route pass would attach.  With ff=1 the engine proves the steady
 *  state after a handful of windows and replays the rest in O(1)
 *  per window. */
Program
steadyLoopKernel(const MachineConfig &config, Word iterations)
{
    ProgramBuilder b("steady_loop", config);
    b.setNumOutputs(1);
    Instruction &gen = b.place(0, 0);
    gen.mode = SenderMode::LoopOp;
    gen.op = Opcode::Loop;
    gen.loopStart = 0;
    gen.loopBound = iterations;
    gen.pipelineII = 1;
    gen.dests = {DestSel::toPe(1, 0)};
    b.setEntry(0, 0);
    for (PeId pe = 1; pe <= 3; ++pe) {
        Instruction &in = b.place(pe, 0);
        in.mode = SenderMode::Dfg;
        in.op = Opcode::Add;
        in.a = OperandSel::channel(0);
        in.b = OperandSel::immediate(1);
        in.dests = {pe == 3 ? DestSel::toOutput(0)
                            : DestSel::toPe(pe + 1, 0)};
        b.setEntry(pe, 0);
    }
    Program prog = b.finish();
    PhaseInfo phase;
    phase.generator = 0;
    phase.trips = iterations;
    phase.recurrenceII = 1;
    phase.fillLatency = 8;
    phase.steadyWindow = 1;
    phase.counted = true;
    prog.phases = {phase};
    return prog;
}

void
BM_SteadyStateFastForward(benchmark::State &state)
{
    MachineConfig config = bigArrayConfig();
    config.fastForward = state.range(0) != 0;
    Program prog = steadyLoopKernel(config, 500'000);
    MarionetteMachine m(config);
    std::uint64_t sim_cycles = 0;
    for (auto _ : state) {
        m.load(prog);
        RunResult r = m.run();
        sim_cycles += r.cycles;
        benchmark::DoNotOptimize(r.totalFires);
    }
    reportSimRate(state, sim_cycles);
    state.counters["ff_engagements"] = static_cast<double>(
        m.fastForwardStats().engagements);
    state.counters["ff_cycles_skipped"] = static_cast<double>(
        m.fastForwardStats().cyclesSkipped);
}
BENCHMARK(BM_SteadyStateFastForward)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"ff"})
    ->Unit(benchmark::kMillisecond);

void
printHotpath()
{
    std::printf("machine hot-path throughput: simulated cycles per "
                "wall-clock second\n(fast=0 reference tick-all "
                "loop, fast=1 activity-driven hot path)\n\n");
}

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printHotpath)
