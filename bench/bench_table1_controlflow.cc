/**
 * @file
 * Table 1: control flow forms across modern applications.
 * Regenerates the classification (branch form, loop form) for the
 * benchmark suite from static CDFG analysis, then times the
 * analysis pipeline.
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

void
printTable1()
{
    bench::banner(
        "Table 1: control flow forms across applications",
        "nested/innermost branches; imperfect nested / serial "
        "loops per Table 1");
    std::printf("%-12s %-18s %-28s %s\n", "Workload",
                "Intensive Branch", "Intensive Loop", "Sizes");
    for (const Workload *w : allWorkloads()) {
        Cdfg g = w->buildCdfg();
        LoopInfo li = LoopInfo::analyze(g);
        ControlFlowProfile p = analyzeControlFlow(g, li);
        std::string loop(loopFormName(p.loopForm));
        if (p.alsoSerialLoops)
            loop += " + Serial Loops";
        std::printf("%-12s %-18s %-28s %s\n", w->name().c_str(),
                    std::string(branchFormName(p.branchForm))
                        .c_str(),
                    loop.c_str(), w->sizeDesc().c_str());
    }
    std::printf("\n");
}

void
BM_CdfgBuild(benchmark::State &state)
{
    const Workload *w = allWorkloads()[static_cast<std::size_t>(
        state.range(0))];
    for (auto _ : state) {
        Cdfg g = w->buildCdfg();
        benchmark::DoNotOptimize(g.totalOps());
    }
    state.SetLabel(w->name());
}
BENCHMARK(BM_CdfgBuild)->DenseRange(0, 12);

void
BM_ControlFlowAnalysis(benchmark::State &state)
{
    Cdfg g = allWorkloads()[static_cast<std::size_t>(
                                state.range(0))]
                 ->buildCdfg();
    LoopInfo li = LoopInfo::analyze(g);
    for (auto _ : state) {
        ControlFlowProfile p = analyzeControlFlow(g, li);
        benchmark::DoNotOptimize(p.totalOps);
    }
}
BENCHMARK(BM_ControlFlowAnalysis)->DenseRange(0, 12);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printTable1)
