/**
 * @file
 * Fig. 11: Marionette PE (with Proactive PE Configuration) vs. the
 * von Neumann PE and dataflow PE execution models on the ten
 * intensive-control-flow benchmarks, with the operators-under-
 * branch fraction of the secondary axis.  No dedicated control
 * network and no Agile PE Assignment in this comparison
 * (Sec. 6.1's fairness setup).
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

void
printFig11()
{
    bench::banner(
        "Fig 11: PE execution models (normalized to vonNeumann)",
        "Marionette PE: 1.18x geomean over vonNeumann (max 1.45x "
        "MS), 1.33x over dataflow (max 1.76x GEMM)");
    auto &z = bench::zoo();
    auto intensive = intensiveProfiles();
    std::vector<const ArchModel *> models{
        z.vonNeumann.get(), z.dataflow.get(),
        z.marionetteBase.get()};
    CycleTable table = runSuite(models, intensive);
    std::printf(
        "%s",
        renderSpeedupTable(table, z.vonNeumann->name(),
                           {z.vonNeumann->name(),
                            z.dataflow->name(),
                            z.marionetteBase->name()},
                           intensive)
            .c_str());
    std::printf("\nOperators under branch (secondary axis):\n");
    for (const WorkloadProfile &p : intensive)
        std::printf("  %-6s %4.0f%%\n", p.name.c_str(),
                    100 * p.controlFlow.opsUnderBranch);
    std::printf("\n");
}

void
BM_ModelEvaluation(benchmark::State &state)
{
    auto &z = bench::zoo();
    const WorkloadProfile &p =
        allProfiles()[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        ModelResult r = z.marionetteBase->run(p);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetLabel(p.name);
}
BENCHMARK(BM_ModelEvaluation)->DenseRange(0, 9);

void
BM_GoldenRunWithTrace(benchmark::State &state)
{
    const Workload *w = allWorkloads()[static_cast<std::size_t>(
        state.range(0))];
    for (auto _ : state) {
        KernelRecorder rec;
        benchmark::DoNotOptimize(w->runGolden(rec));
    }
    state.SetLabel(w->name());
}
BENCHMARK(BM_GoldenRunWithTrace)->Arg(0)->Arg(5)->Arg(9);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printFig11)
