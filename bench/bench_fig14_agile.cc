/**
 * @file
 * Fig. 14: speedup contributed by Agile PE Assignment — the
 * innermost-first, waste-minimizing scheduler plus FIFO-decoupled
 * loop rounds (Sec. 4.3) — over Marionette PE + control network.
 */

#include "bench_common.h"

#include "compiler/assignment.h"

namespace marionette
{
namespace
{

void
printFig14()
{
    bench::banner(
        "Fig 14: + Agile PE Assignment",
        "2.03x geomean improvement, up to 5.99x; limited by loop "
        "structure and inter-loop data dependences (LDPC)");
    auto &z = bench::zoo();
    auto intensive = intensiveProfiles();
    std::vector<const ArchModel *> models{
        z.marionetteNet.get(), z.marionette.get()};
    CycleTable table = runSuite(models, intensive);
    std::printf("%s",
                renderSpeedupTable(table, z.marionetteNet->name(),
                                   {z.marionette->name()},
                                   intensive)
                    .c_str());

    // The scheduling decisions behind the speedup (Fig. 8).
    std::printf("\nAgile schedule of GEMM on 16 PEs:\n");
    Cdfg g = gemmWorkload().buildCdfg();
    LoopInfo li = LoopInfo::analyze(g);
    std::printf("%s\n", agileSchedule(g, li, 16).toString(g).c_str());
}

void
BM_AgileSchedule(benchmark::State &state)
{
    Cdfg g = allWorkloads()[static_cast<std::size_t>(
                                state.range(0))]
                 ->buildCdfg();
    LoopInfo li = LoopInfo::analyze(g);
    for (auto _ : state) {
        AssignmentPlan plan = agileSchedule(g, li, 16);
        benchmark::DoNotOptimize(plan.totalWaste);
    }
}
BENCHMARK(BM_AgileSchedule)->DenseRange(0, 9);

void
BM_AgileModelFullSuite(benchmark::State &state)
{
    auto &z = bench::zoo();
    auto intensive = intensiveProfiles();
    for (auto _ : state) {
        double total = 0;
        for (const WorkloadProfile &p : intensive)
            total += z.marionette->run(p).cycles;
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_AgileModelFullSuite);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printFig14)
