/**
 * @file
 * Ablation: how Marionette's advantage scales with the array size
 * (DESIGN.md design-choice study; the paper's "parameterizable
 * design", Sec. 5).  Sweeps 2x2 .. 16x16 fabrics, all architectures
 * normalized to the same PE count at each point, and reports the
 * intensive-suite geomean advantage.
 *
 * The per-array-size evaluations are independent, so the table is
 * produced through the parallel sweep runner (sim/sweep.h): one job
 * per array size, results in sweep order regardless of thread
 * count.
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

/** One printed row of the scaling table. */
struct ScalingRow
{
    int dim = 0;
    double vsSoftbrain = 0.0;
    double vsRevel = 0.0;
    double agileGain = 0.0;
};

ScalingRow
evalScalingPoint(int dim,
                 const std::vector<WorkloadProfile> &intensive)
{
    ModelParams params;
    params.numPes = dim * dim;
    Features full_f;
    Features net_f;
    net_f.agileAssignment = false;
    auto mar = makeMarionette(params, full_f);
    auto mar_net = makeMarionette(params, net_f);
    auto sb = makeSoftbrain(params);
    auto revel = makeRevel(params);
    std::vector<double> vs_sb, vs_revel, agile;
    for (const WorkloadProfile &p : intensive) {
        double m = mar->run(p).cycles;
        vs_sb.push_back(sb->run(p).cycles / m);
        vs_revel.push_back(revel->run(p).cycles / m);
        agile.push_back(mar_net->run(p).cycles / m);
    }
    return ScalingRow{dim, geomean(vs_sb), geomean(vs_revel),
                      geomean(agile)};
}

void
printScaling()
{
    bench::banner(
        "Ablation: Marionette advantage vs array size",
        "(extension study; the paper evaluates 16 PEs) — the "
        "advantage persists across fabric sizes, growing where "
        "static partitions fragment");
    auto intensive = intensiveProfiles();
    const std::vector<int> dims{2, 3, 4, 6, 8};

    // One sweep job per array size; rows come back in dims order.
    SweepRunner runner;
    std::vector<ScalingRow> rows = runner.map<ScalingRow>(
        static_cast<int>(dims.size()), [&](int i) {
            return evalScalingPoint(
                dims[static_cast<std::size_t>(i)], intensive);
        });

    std::printf("%-8s %14s %14s %14s\n", "Array", "vs Softbrain",
                "vs REVEL", "agile gain");
    for (const ScalingRow &row : rows)
        std::printf("%dx%-6d %13.2fx %13.2fx %13.2fx\n", row.dim,
                    row.dim, row.vsSoftbrain, row.vsRevel,
                    row.agileGain);
    std::printf("\n");
}

void
BM_ScalingPoint(benchmark::State &state)
{
    ModelParams params;
    params.numPes = static_cast<int>(state.range(0));
    Features full_f;
    auto mar = makeMarionette(params, full_f);
    auto intensive = intensiveProfiles();
    for (auto _ : state) {
        double total = 0;
        for (const WorkloadProfile &p : intensive)
            total += mar->run(p).cycles;
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_ScalingPoint)->Arg(4)->Arg(16)->Arg(64);

/** Wall-clock of the whole scaling sweep, serial vs pooled. */
void
BM_ScalingSweep(benchmark::State &state)
{
    auto intensive = intensiveProfiles();
    const std::vector<int> dims{2, 3, 4, 6, 8};
    SweepRunner runner(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto rows = runner.map<ScalingRow>(
            static_cast<int>(dims.size()), [&](int i) {
                return evalScalingPoint(
                    dims[static_cast<std::size_t>(i)], intensive);
            });
        benchmark::DoNotOptimize(rows.data());
    }
}
BENCHMARK(BM_ScalingSweep)->Arg(1)->Arg(4)->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printScaling)
