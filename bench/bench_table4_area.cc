/**
 * @file
 * Table 4: area and power breakdown of the 28 nm prototype.
 * Prints the component table from the calibrated model and times
 * the model across configurations.
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

void
printTable4()
{
    bench::banner("Table 4: area and power breakdown (28 nm)",
                  "0.151 mm^2 / 152.09 mW total; control network "
                  "0.0022 mm^2 / 13.89 mW");
    MachineConfig config;
    std::printf("%s\n",
                marionetteAreaBreakdown(config).toString().c_str());

    std::printf("scaling check (8x8 array):\n");
    MachineConfig big;
    big.rows = 8;
    big.cols = 8;
    big.nonlinearPes = 16;
    AreaBreakdown bd = marionetteAreaBreakdown(big);
    std::printf("  total %.4f mm^2 / %.2f mW\n\n", bd.totalAreaMm2,
                bd.totalPowerMw);
}

void
BM_AreaBreakdown(benchmark::State &state)
{
    MachineConfig config;
    config.rows = static_cast<int>(state.range(0));
    config.cols = static_cast<int>(state.range(0));
    config.nonlinearPes = config.numPes() / 4;
    for (auto _ : state) {
        AreaBreakdown bd = marionetteAreaBreakdown(config);
        benchmark::DoNotOptimize(bd.totalAreaMm2);
    }
}
BENCHMARK(BM_AreaBreakdown)->Arg(2)->Arg(4)->Arg(8);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printTable4)
