/**
 * @file
 * Shared scaffolding for the per-table/per-figure bench binaries.
 *
 * Every binary in bench/ regenerates one artifact of the paper's
 * evaluation section: it prints the table/series on startup (the
 * reproduction artifact recorded in EXPERIMENTS.md) and then runs
 * google-benchmark timings of the machinery behind it.
 */

#ifndef MARIONETTE_BENCH_BENCH_COMMON_H
#define MARIONETTE_BENCH_BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/marionette.h"

namespace marionette::bench
{

/** The model zoo every figure bench draws from. */
struct ModelZoo
{
    ModelZoo()
    {
        Features base_f;
        base_f.controlNetwork = false;
        base_f.agileAssignment = false;
        Features net_f = base_f;
        net_f.controlNetwork = true;
        Features full_f;

        vonNeumann = makeVonNeumannPe(params);
        dataflow = makeDataflowPe(params);
        marionetteBase = makeMarionette(params, base_f);
        marionetteNet = makeMarionette(params, net_f);
        marionette = makeMarionette(params, full_f);
        softbrain = makeSoftbrain(params);
        tia = makeTia(params);
        revel = makeRevel(params);
        riptide = makeRiptide(params);
    }

    ModelParams params;
    std::unique_ptr<ArchModel> vonNeumann;
    std::unique_ptr<ArchModel> dataflow;
    std::unique_ptr<ArchModel> marionetteBase; ///< proactive only.
    std::unique_ptr<ArchModel> marionetteNet;  ///< + control net.
    std::unique_ptr<ArchModel> marionette;     ///< + agile (full).
    std::unique_ptr<ArchModel> softbrain;
    std::unique_ptr<ArchModel> tia;
    std::unique_ptr<ArchModel> revel;
    std::unique_ptr<ArchModel> riptide;
};

inline ModelZoo &
zoo()
{
    static ModelZoo z;
    return z;
}

/** Banner for the printed artifact. */
inline void
banner(const char *artifact, const char *paper_claim)
{
    std::printf("================================================"
                "=============\n");
    std::printf("%s\n", artifact);
    std::printf("paper reports: %s\n", paper_claim);
    std::printf("================================================"
                "=============\n");
}

} // namespace marionette::bench

/** Print the artifact once, then run the timings. */
#define MARIONETTE_BENCH_MAIN(print_artifact)                     \
    int main(int argc, char **argv)                               \
    {                                                             \
        print_artifact();                                         \
        ::benchmark::Initialize(&argc, argv);                     \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
            return 1;                                             \
        ::benchmark::RunSpecifiedBenchmarks();                    \
        ::benchmark::Shutdown();                                  \
        return 0;                                                 \
    }

#endif // MARIONETTE_BENCH_BENCH_COMMON_H
