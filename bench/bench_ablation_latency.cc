/**
 * @file
 * Ablation: sensitivity of the control-network benefit to the
 * fabric's latency parameters (DESIGN.md design-choice study).
 * Sweeps (a) the data-mesh latency a network-less design would pay
 * for control transfers, and (b) the dedicated network's own
 * latency — showing where the one-cycle CS-Benes stops paying off.
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

void
printLatencySweep()
{
    bench::banner(
        "Ablation: control-transfer latency sensitivity",
        "(extension study) Fig. 12's 1.14x assumes 6-cycle mesh "
        "vs 1-cycle network; the gain shrinks as the mesh gets "
        "faster and grows with slower meshes");
    auto intensive = intensiveProfiles();

    std::printf("data-mesh control latency sweep (network = 1 "
                "cycle):\n");
    std::printf("%-12s %16s\n", "meshLatency", "ctrlnet gain GM");
    for (double mesh_lat : {2.0, 4.0, 6.0, 9.0, 12.0}) {
        ModelParams params;
        params.dataNetLat = mesh_lat;
        Features base_f;
        base_f.controlNetwork = false;
        base_f.agileAssignment = false;
        Features net_f = base_f;
        net_f.controlNetwork = true;
        auto base = makeMarionette(params, base_f);
        auto net = makeMarionette(params, net_f);
        std::vector<double> gains;
        for (const WorkloadProfile &p : intensive)
            gains.push_back(base->run(p).cycles /
                            net->run(p).cycles);
        std::printf("%-12.0f %15.3fx\n", mesh_lat,
                    geomean(gains));
    }

    std::printf("\ndedicated-network latency sweep (mesh = 6 "
                "cycles):\n");
    std::printf("%-12s %16s\n", "netLatency", "ctrlnet gain GM");
    for (double net_lat : {1.0, 2.0, 3.0, 4.0, 6.0}) {
        ModelParams params;
        params.ctrlNetLat = net_lat;
        Features base_f;
        base_f.controlNetwork = false;
        base_f.agileAssignment = false;
        Features net_f = base_f;
        net_f.controlNetwork = true;
        auto base = makeMarionette(params, base_f);
        auto net = makeMarionette(params, net_f);
        std::vector<double> gains;
        for (const WorkloadProfile &p : intensive)
            gains.push_back(base->run(p).cycles /
                            net->run(p).cycles);
        std::printf("%-12.0f %15.3fx\n", net_lat,
                    geomean(gains));
    }
    std::printf("\n");
}

void
BM_LatencySweepPoint(benchmark::State &state)
{
    ModelParams params;
    params.dataNetLat = static_cast<double>(state.range(0));
    Features base_f;
    base_f.controlNetwork = false;
    base_f.agileAssignment = false;
    auto base = makeMarionette(params, base_f);
    auto intensive = intensiveProfiles();
    for (auto _ : state) {
        double total = 0;
        for (const WorkloadProfile &p : intensive)
            total += base->run(p).cycles;
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_LatencySweepPoint)->Arg(2)->Arg(6)->Arg(12);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printLatencySweep)
