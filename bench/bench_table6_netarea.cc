/**
 * @file
 * Table 6: network-area comparison against state-of-the-art
 * spatial architectures (normalized 28 nm, 32-bit, 4x4 array).
 * Prints the comparison and times the underlying switch-count
 * computation (a real CS-Benes instantiation per query).
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

void
printTable6()
{
    bench::banner(
        "Table 6: network area comparison (28 nm, 4x4, 32-bit)",
        "Marionette network 0.0118 mm^2 = 11.5% of fabric; "
        "others 47-76%");
    MachineConfig config;
    std::printf("%s\n",
                toString(networkAreaComparison(config)).c_str());
}

void
BM_NetworkAreaComparison(benchmark::State &state)
{
    MachineConfig config;
    for (auto _ : state) {
        auto table = networkAreaComparison(config);
        benchmark::DoNotOptimize(table.size());
    }
}
BENCHMARK(BM_NetworkAreaComparison);

void
BM_ControlNetworkConstruction(benchmark::State &state)
{
    int pes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        ControlNetwork net(pes, pes);
        benchmark::DoNotOptimize(net.benesSwitches());
    }
}
BENCHMARK(BM_ControlNetworkConstruction)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printTable6)
