/**
 * @file
 * Fig. 15: fine-grained effects of Agile PE Assignment — the
 * utilization of PEs originally pinned to outer basic blocks, and
 * pipeline utilization (initiations / busy cycles) — on the
 * nested-loop benchmarks whose innermost loops pipeline.
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

const char *const kNestedBenchmarks[] = {"FFT", "VI",  "NW",
                                         "HT",  "SCD", "LDPC",
                                         "GEMM"};

void
printFig15()
{
    bench::banner(
        "Fig 15: Agile PE Assignment utilization effects",
        "outer-BB PE utilization improves 21.57x on average "
        "(GEMM 134x); pipeline utilization improves 1.54x");
    auto &z = bench::zoo();
    std::printf("%-6s %22s %26s\n", "", "outer-BB PE util",
                "pipeline util");
    std::vector<double> outer_gains, pipe_gains;
    for (const char *name : kNestedBenchmarks) {
        for (const WorkloadProfile &p : allProfiles()) {
            if (p.name != name)
                continue;
            ModelResult s = z.marionetteNet->run(p);
            ModelResult a = z.marionette->run(p);
            double og = s.outerBbPeUtil > 0
                            ? a.outerBbPeUtil / s.outerBbPeUtil
                            : 0.0;
            double pg = s.pipelineUtil > 0
                            ? a.pipelineUtil / s.pipelineUtil
                            : 0.0;
            std::printf("%-6s %6.1f%% -> %6.1f%% (%5.1fx)   "
                        "%5.1f%% -> %5.1f%% (%4.2fx)\n",
                        p.name.c_str(), 100 * s.outerBbPeUtil,
                        100 * a.outerBbPeUtil, og,
                        100 * s.pipelineUtil,
                        100 * a.pipelineUtil, pg);
            if (og > 0)
                outer_gains.push_back(og);
            if (pg > 0)
                pipe_gains.push_back(pg);
        }
    }
    std::printf("%-6s outer-BB geomean %.2fx   pipeline geomean "
                "%.2fx\n\n",
                "GM", geomean(outer_gains), geomean(pipe_gains));
}

void
BM_UtilizationMetrics(benchmark::State &state)
{
    auto &z = bench::zoo();
    const WorkloadProfile &p =
        allProfiles()[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        ModelResult r = z.marionette->run(p);
        benchmark::DoNotOptimize(r.outerBbPeUtil);
        benchmark::DoNotOptimize(r.pipelineUtil);
    }
    state.SetLabel(p.name);
}
BENCHMARK(BM_UtilizationMetrics)->Arg(1)->Arg(9);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printFig15)
