/**
 * @file
 * Fig. 12: speedup contributed by the dedicated peer-to-peer
 * control network (control words at 1 cycle instead of riding the
 * 6-cycle data mesh).  Also demonstrates the effect on the
 * functional machine via the feature toggle.
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

void
printFig12()
{
    bench::banner(
        "Fig 12: + peer-to-peer control network",
        "1.14x geomean improvement, up to 1.36x (CRC); partially-"
        "pipelined kernels (CRC/ADPCM/MS) gain most");
    auto &z = bench::zoo();
    auto intensive = intensiveProfiles();
    std::vector<const ArchModel *> models{
        z.marionetteBase.get(), z.marionetteNet.get()};
    CycleTable table = runSuite(models, intensive);
    std::printf("%s",
                renderSpeedupTable(table,
                                   z.marionetteBase->name(),
                                   {z.marionetteNet->name()},
                                   intensive)
                    .c_str());
    std::printf("\n");
}

/** Functional-machine ablation: same kernel, network on/off. */
void
BM_MachineWithControlNetwork(benchmark::State &state)
{
    MachineConfig config;
    config.features.controlNetwork = state.range(0) != 0;
    ProgramBuilder b("abl", config);
    Instruction &gen = b.place(0, 0);
    gen.mode = SenderMode::LoopOp;
    gen.op = Opcode::Loop;
    gen.loopStart = 0;
    gen.loopBound = 128;
    gen.dests = {DestSel::toPe(5, 0), DestSel::toPe(15, 0)};
    b.setEntry(0, 0);
    Instruction &br = b.place(5, 0);
    br.mode = SenderMode::BranchOp;
    br.op = Opcode::And;
    br.a = OperandSel::channel(0);
    br.b = OperandSel::immediate(1);
    br.takenAddr = 1;
    br.notTakenAddr = 2;
    br.ctrlDests = {15};
    b.setEntry(5, 0);
    for (InstrAddr addr : {1, 2}) {
        Instruction &lane = b.place(15, addr);
        lane.mode = SenderMode::Dfg;
        lane.op = Opcode::Add;
        lane.a = OperandSel::channel(0);
        lane.b = OperandSel::immediate(addr);
        lane.ctrlGated = true;
        lane.dests = {DestSel::toOutput(0)};
    }
    Program prog = b.finish();

    Cycle cycles = 0;
    for (auto _ : state) {
        MarionetteMachine m(config);
        m.load(prog);
        RunResult r = m.run();
        cycles = r.cycles;
        benchmark::DoNotOptimize(r.outputs[0].size());
    }
    state.counters["kernel_cycles"] =
        static_cast<double>(cycles);
    state.SetLabel(state.range(0) ? "with_ctrlnet"
                                  : "ctrl_over_mesh");
}
BENCHMARK(BM_MachineWithControlNetwork)->Arg(1)->Arg(0);

void
BM_BenesRoute64(benchmark::State &state)
{
    BenesNetwork net(64);
    Rng rng(1);
    std::vector<int> perm(64);
    for (int i = 0; i < 64; ++i)
        perm[static_cast<std::size_t>(i)] = i;
    for (int i = 63; i > 0; --i) {
        int j = static_cast<int>(
            rng.nextBounded(static_cast<std::uint64_t>(i + 1)));
        std::swap(perm[static_cast<std::size_t>(i)],
                  perm[static_cast<std::size_t>(j)]);
    }
    for (auto _ : state) {
        BenesRouting r = net.route(perm);
        benchmark::DoNotOptimize(r.settings.size());
    }
}
BENCHMARK(BM_BenesRoute64);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printFig12)
