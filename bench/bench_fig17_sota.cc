/**
 * @file
 * Fig. 17: Marionette vs. state-of-the-art spatial architectures
 * (Softbrain, TIA, REVEL, RipTide) on all 13 benchmarks,
 * normalized fabrics — the headline result — plus the full-LDPC
 * composite reported in the caption.
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

void
printFig17()
{
    bench::banner(
        "Fig 17: vs state-of-the-art (normalized to Softbrain)",
        "Marionette geomeans on intensive kernels: 2.88x vs "
        "Softbrain, 3.38x vs TIA, 1.55x vs REVEL, 2.66x vs "
        "RipTide; non-intensive kernels at parity");
    auto &z = bench::zoo();
    const auto &profiles = allProfiles();
    auto intensive = intensiveProfiles();
    std::vector<const ArchModel *> models{
        z.softbrain.get(), z.tia.get(), z.revel.get(),
        z.riptide.get(), z.marionette.get()};
    CycleTable table = runSuite(models, profiles);
    std::printf(
        "%s",
        renderSpeedupTable(
            table, z.softbrain->name(),
            {z.softbrain->name(), z.tia->name(), z.revel->name(),
             z.riptide->name(), z.marionette->name()},
            profiles)
            .c_str());

    std::printf("\nMarionette geomean speedups (intensive):\n");
    for (const ArchModel *m :
         {z.softbrain.get(), z.tia.get(), z.revel.get(),
          z.riptide.get()}) {
        std::printf("  vs %-10s %.2fx\n", m->name().c_str(),
                    speedups(table, m->name(),
                             z.marionette->name(), intensive)
                        .back());
    }

    // Full LDPC application (intensive decode + non-intensive
    // front-end processing), per the Fig. 17 caption.
    auto composite = [&table](const std::string &arch) {
        return table.at(arch).at("LDPC").cycles +
               table.at(arch).at("GP").cycles;
    };
    std::printf("\nFull LDPC application (LDPC + GP phases):\n");
    for (const ArchModel *m :
         {z.softbrain.get(), z.tia.get(), z.revel.get(),
          z.riptide.get()}) {
        std::printf("  vs %-10s %.2fx\n", m->name().c_str(),
                    composite(m->name()) /
                        composite(z.marionette->name()));
    }
    std::printf("\n");
}

void
BM_FullComparison(benchmark::State &state)
{
    auto &z = bench::zoo();
    const auto &profiles = allProfiles();
    std::vector<const ArchModel *> models{
        z.softbrain.get(), z.tia.get(), z.revel.get(),
        z.riptide.get(), z.marionette.get()};
    for (auto _ : state) {
        CycleTable table = runSuite(models, profiles);
        benchmark::DoNotOptimize(table.size());
    }
}
BENCHMARK(BM_FullComparison);

void
BM_SingleArchSuite(benchmark::State &state)
{
    auto &z = bench::zoo();
    const ArchModel *models[] = {z.softbrain.get(), z.tia.get(),
                                 z.revel.get(), z.riptide.get(),
                                 z.marionette.get()};
    const ArchModel *m =
        models[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        double total = 0;
        for (const WorkloadProfile &p : allProfiles())
            total += m->run(p).cycles;
        benchmark::DoNotOptimize(total);
    }
    state.SetLabel(m->name());
}
BENCHMARK(BM_SingleArchSuite)->DenseRange(0, 4);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printFig17)
