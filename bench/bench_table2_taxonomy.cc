/**
 * @file
 * Table 2: the survey taxonomy of spatial architectures by PE
 * execution model, with each design's configuration-triggering
 * mechanism — the classification behind the two Fig. 11 PE
 * baselines.
 */

#include "bench_common.h"

#include "model/taxonomy.h"

namespace marionette
{
namespace
{

void
printTable2()
{
    bench::banner(
        "Table 2: SA taxonomy by PE execution model",
        "11 von Neumann-derived and 6 dataflow-derived designs "
        "surveyed over the past decade");
    std::printf("%s\n", renderTaxonomy().c_str());

    // The archetype models this taxonomy motivates.
    auto &z = bench::zoo();
    auto intensive = intensiveProfiles();
    double vn_total = 0, df_total = 0;
    for (const WorkloadProfile &p : intensive) {
        vn_total += z.vonNeumann->run(p).cycles;
        df_total += z.dataflow->run(p).cycles;
    }
    std::printf("archetype totals on the intensive suite: "
                "vonNeumannPE %.0f cycles, dataflowPE %.0f "
                "cycles\n\n", vn_total, df_total);
}

void
BM_TaxonomyRender(benchmark::State &state)
{
    for (auto _ : state) {
        std::string s = renderTaxonomy();
        benchmark::DoNotOptimize(s.size());
    }
}
BENCHMARK(BM_TaxonomyRender);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printTable2)
