/**
 * @file
 * Table 3: control-flow capability comparison.  Prints the matrix
 * and backs the Marionette row with measurements: autonomy and
 * peer-to-peer transfer demonstrated on the functional machine.
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

void
printTable3()
{
    bench::banner("Table 3: control-flow capability matrix",
                  "only Marionette has autonomous + peer-to-peer "
                  "+ loosely-coupled control");
    std::printf("%s\n", renderCapabilityMatrix().c_str());
}

/** A branch PE autonomously reconfiguring a peer, end to end. */
Program
steeringKernel(const MachineConfig &config, int n)
{
    ProgramBuilder b("steer", config);
    Instruction &gen = b.place(0, 0);
    gen.mode = SenderMode::LoopOp;
    gen.op = Opcode::Loop;
    gen.loopStart = 0;
    gen.loopBound = n;
    gen.dests = {DestSel::toPe(1, 0), DestSel::toPe(2, 0)};
    b.setEntry(0, 0);
    Instruction &br = b.place(1, 0);
    br.mode = SenderMode::BranchOp;
    br.op = Opcode::And;
    br.a = OperandSel::channel(0);
    br.b = OperandSel::immediate(1);
    br.takenAddr = 1;
    br.notTakenAddr = 2;
    br.ctrlDests = {2};
    b.setEntry(1, 0);
    for (InstrAddr addr : {1, 2}) {
        Instruction &lane = b.place(2, addr);
        lane.mode = SenderMode::Dfg;
        lane.op = Opcode::Add;
        lane.a = OperandSel::channel(0);
        lane.b = OperandSel::immediate(addr);
        lane.ctrlGated = true;
        lane.dests = {DestSel::toOutput(0)};
    }
    return b.finish();
}

void
BM_AutonomousSteering(benchmark::State &state)
{
    MachineConfig config;
    Program prog =
        steeringKernel(config, static_cast<int>(state.range(0)));
    for (auto _ : state) {
        MarionetteMachine m(config);
        m.load(prog);
        RunResult r = m.run();
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AutonomousSteering)->Arg(64)->Arg(256);

void
BM_ControlNetworkTransfer(benchmark::State &state)
{
    ControlNetwork net(16, 4);
    net.configure({ControlRoute{0, {3, 4, 5, 6}}});
    Word word = 0;
    for (auto _ : state) {
        auto deliveries = net.transfer({{0, word++}});
        benchmark::DoNotOptimize(deliveries.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControlNetworkTransfer);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printTable3)
