/**
 * @file
 * Fig. 16: the balance between the control network's speedup and
 * Agile PE Assignment's speedup per benchmark — kernels that
 * cannot pipeline (CRC/ADPCM/MS/LDPC) lean on the network, while
 * regular control flow (VI/HT/SCD/GEMM) leans on Agile.
 */

#include "bench_common.h"

namespace marionette
{
namespace
{

void
printFig16()
{
    bench::banner(
        "Fig 16: control network vs Agile PE Assignment split",
        "CRC/ADPCM/MS/LDPC: network-dominated; VI/HT/SCD/GEMM: "
        "pipeline(Agile)-dominated");
    auto &z = bench::zoo();
    // Paper's x-axis order groups network-dominated first.
    const char *const order[] = {"MS",  "ADPCM", "CRC", "LDPC",
                                 "NW",  "FFT",   "VI",  "HT",
                                 "SCD", "GEMM"};
    std::printf("%-8s %18s %18s %s\n", "", "network gain",
                "agile gain", "dominant");
    for (const char *name : order) {
        for (const WorkloadProfile &p : allProfiles()) {
            if (p.name != name)
                continue;
            double base = z.marionetteBase->run(p).cycles;
            double net = z.marionetteNet->run(p).cycles;
            double all = z.marionette->run(p).cycles;
            double net_gain = base / net - 1.0;
            double agile_gain = net / all - 1.0;
            const char *dominant =
                net_gain > agile_gain ? "network" : "agile";
            if (net_gain < 0.02 && agile_gain < 0.02)
                dominant = "neither";
            std::printf("%-8s %17.0f%% %17.0f%% %s\n",
                        p.name.c_str(), 100 * net_gain,
                        100 * agile_gain, dominant);
        }
    }
    std::printf("\n");
}

void
BM_ThreeConfigSweep(benchmark::State &state)
{
    auto &z = bench::zoo();
    const WorkloadProfile &p =
        allProfiles()[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        double base = z.marionetteBase->run(p).cycles;
        double net = z.marionetteNet->run(p).cycles;
        double all = z.marionette->run(p).cycles;
        benchmark::DoNotOptimize(base + net + all);
    }
    state.SetLabel(p.name);
}
BENCHMARK(BM_ThreeConfigSweep)->Arg(0)->Arg(5)->Arg(9);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printFig16)
