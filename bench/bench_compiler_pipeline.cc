/**
 * @file
 * The CDFG->Program compiler pipeline as an artifact and a timing
 * target: prints the supported-workload matrix (which Table-5
 * kernels compile and run bit-exact on the cycle-accurate machine,
 * and why the rest are rejected), then times the pipeline itself —
 * a cold compile per kernel, a program-cache hit, and a full
 * compile+run+validate round trip.
 */

#include "bench_common.h"

namespace marionette
{

namespace
{

MachineConfig
pipelineConfig()
{
    MachineConfig config;
    config.rows = 10;
    config.cols = 10;
    config.scratchpadBytes = 512 * 1024;
    config.instrMemBytes = 64 * 1024;
    return config;
}

void
printMatrix()
{
    MachineConfig config = pipelineConfig();
    Compiler compiler(config);
    std::printf("== Compiler pipeline: supported-workload matrix "
                "(8x8, 512 KiB) ==\n");
    for (const Workload *w : allWorkloads()) {
        CompileResult r = compiler.compile(*w);
        if (r.ok())
            std::printf("  %-6s compiles (model estimate %.0f "
                        "cycles)\n",
                        w->name().c_str(),
                        r.report.modelCycleEstimate);
        else
            std::printf("  %-6s rejected [%s] %s\n",
                        w->name().c_str(),
                        r.report.failedPass.c_str(),
                        r.report.reason.c_str());
    }
}

/** Cold compile (no cache): the whole pass pipeline per kernel. */
void
BM_CompileKernel(benchmark::State &state)
{
    const Workload *w = allWorkloads()[static_cast<std::size_t>(
        state.range(0))];
    MachineConfig config = pipelineConfig();
    Compiler compiler(config);
    for (auto _ : state) {
        CompileResult r = compiler.compile(*w);
        benchmark::DoNotOptimize(r.ok());
    }
    state.SetLabel(w->name());
}
BENCHMARK(BM_CompileKernel)->DenseRange(0, 12);

/** A warm program-cache lookup (the sweep steady state). */
void
BM_ProgramCacheHit(benchmark::State &state)
{
    MachineConfig config = pipelineConfig();
    ProgramCache cache;
    const Workload *w = findWorkload("CRC");
    cache.getOrCompile(*w, config); // prime.
    for (auto _ : state) {
        CompileResult r = cache.getOrCompile(*w, config);
        benchmark::DoNotOptimize(r.kernel.get());
    }
}
BENCHMARK(BM_ProgramCacheHit);

/** Compile + run + bit-exact validation, end to end. */
void
BM_CompileRunValidate(benchmark::State &state)
{
    MachineConfig config = pipelineConfig();
    ProgramCache cache;
    const Workload *w =
        findWorkload(state.range(0) == 0 ? "SI" : "CRC");
    for (auto _ : state) {
        CompileResult r = cache.getOrCompile(*w, config);
        MarionetteMachine machine(config);
        r.kernel->prepare(machine);
        RunResult run = machine.run(r.kernel->cycleBudget);
        bool exact = r.kernel->validate(machine, run).empty();
        benchmark::DoNotOptimize(exact);
    }
    state.SetLabel(w->name());
}
BENCHMARK(BM_CompileRunValidate)->Arg(0)->Arg(1);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printMatrix)
