/**
 * @file
 * Fault-resilience artifact: survival of the Table-5 kernels on a
 * 10x10 fabric with seeded dead PEs and dead mesh links, plus
 * google-benchmark timings of the machinery behind it — the
 * fault-aware compile (placement excludes dead PEs, routing detours
 * around dead links), the discovery-mode retry (fault-oblivious
 * compile, structured run error, re-place/re-route, rerun), and the
 * watchdog's bounded-time detection of a stranded word.
 *
 * The printed table is the BENCH_resilience.json companion (the
 * full grid is produced by `paper_eval --faults`); the timings
 * answer "what does resilience cost": a fault-aware compile is the
 * same pass pipeline with a smaller PE pool, and the watchdog adds
 * nothing to healthy runs (zero-fault byte-identity is enforced by
 * tests/fault_resilience_test.cc).
 */

#include "bench_common.h"

#include "compiler/program_builder.h"
#include "compiler/program_cache.h"
#include "sim/sweep.h"
#include "workloads/workload.h"

namespace marionette
{
namespace
{

MachineConfig
evalFabric()
{
    MachineConfig config;
    config.rows = 10;
    config.cols = 10;
    config.scratchpadBytes = 512 * 1024;
    config.instrMemBytes = 64 * 1024;
    return config;
}

MachineConfig
faultedFabric(int dead_pes, int dead_links)
{
    MachineConfig config = evalFabric();
    config.faults = FaultPlan::seeded(config.rows, config.cols,
                                      dead_pes, dead_links, 1);
    return config;
}

void
printSurvivalTable()
{
    bench::banner(
        "Fault resilience: kernel survival under seeded faults "
        "(10x10, seed 1)",
        "n/a — robustness artifact (paper fabric, injected "
        "faults)");

    const std::pair<int, int> cells[] = {
        {0, 0}, {2, 0}, {2, 1}, {4, 2}, {8, 4}};
    SweepRunner runner;
    ProgramCache cache;
    std::vector<KernelSweepJob> jobs;
    std::vector<std::string> labels;
    for (const Workload *w : allWorkloads())
        for (const auto &[d, l] : cells) {
            KernelSweepJob job{w, faultedFabric(d, l), 0,
                               CompilerOptions{}};
            job.discoverFaults = true;
            job.maxRetries = 1;
            jobs.push_back(std::move(job));
            labels.push_back(w->name());
        }
    std::vector<KernelSweepResult> results =
        runner.runKernels(jobs, cache);

    std::printf("  %-6s", "kernel");
    for (const auto &[d, l] : cells)
        std::printf("  %dpe/%dln", d, l);
    std::printf("\n");
    const std::size_t per = std::size(cells);
    for (std::size_t i = 0; i < results.size(); i += per) {
        std::printf("  %-6s", labels[i].c_str());
        for (std::size_t j = 0; j < per; ++j) {
            const KernelSweepResult &r = results[i + j];
            const char *cell =
                !r.compiled ? "reject"
                : r.validated
                    ? (r.recompiled ? "retry+ok" : "ok")
                    : "FAIL";
            std::printf("  %8s", cell);
        }
        std::printf("\n");
    }
    KernelSweepStats stats = summarizeKernelSweep(results);
    std::printf("  %d/%d compiled cells validated, %d retried "
                "(%d recovered by recompile)\n\n",
                stats.validated, stats.compiled, stats.retried,
                stats.recoveredByRecompile);
}

/** Fault-aware compile: full pass pipeline with 2 dead PEs and a
 *  dead link carved out of the pool. */
void
BM_FaultAwareCompile(benchmark::State &state)
{
    const Workload *nw = findWorkload("NW");
    MachineConfig config = faultedFabric(2, 1);
    for (auto _ : state) {
        CompileResult r = Compiler(config).compile(*nw);
        benchmark::DoNotOptimize(r.ok());
    }
}
BENCHMARK(BM_FaultAwareCompile)->Unit(benchmark::kMillisecond);

/** The discovery-mode retry end to end: oblivious compile (cached),
 *  run into the dead PE, recompile around it, validated rerun. */
void
BM_DiscoveryRetry(benchmark::State &state)
{
    const Workload *crc = findWorkload("CRC");
    MachineConfig faulted = faultedFabric(2, 0);
    SweepRunner runner(1);
    for (auto _ : state) {
        ProgramCache cache;
        KernelSweepJob job{crc, faulted, 0, CompilerOptions{}};
        job.discoverFaults = true;
        job.maxRetries = 1;
        std::vector<KernelSweepResult> r =
            runner.runKernels({job}, cache);
        benchmark::DoNotOptimize(r[0].validated);
    }
}
BENCHMARK(BM_DiscoveryRetry)->Unit(benchmark::kMillisecond);

/** Watchdog detection latency: a word stranded by a cut mesh must
 *  surface as a structured deadlock in bounded time. */
void
BM_WatchdogStrandedWord(benchmark::State &state)
{
    MachineConfig config;
    config.rows = 1;
    config.cols = 4;
    config.faults.deadLinks = {DeadLink{1, 2}};
    ProgramBuilder b("cut_row", config);
    b.setNumOutputs(1);
    Instruction &gen = b.place(0, 0);
    gen.mode = SenderMode::LoopOp;
    gen.op = Opcode::Loop;
    gen.loopStart = 7;
    gen.loopBound = 8;
    gen.loopStep = 1;
    gen.pipelineII = 1;
    gen.dests = {DestSel::toPe(2, 0)};
    b.setEntry(0, 0);
    Instruction &sink = b.place(2, 0);
    sink.mode = SenderMode::Dfg;
    sink.op = Opcode::Copy;
    sink.a = OperandSel::channel(0);
    sink.dests = {DestSel::toOutput(0)};
    b.setEntry(2, 0);
    Program program = b.finish();

    for (auto _ : state) {
        MarionetteMachine machine(config);
        machine.load(program);
        RunResult r = machine.run(100'000);
        benchmark::DoNotOptimize(r.error == RunError::Deadlock);
    }
}
BENCHMARK(BM_WatchdogStrandedWord)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace marionette

MARIONETTE_BENCH_MAIN(marionette::printSurvivalTable)
