/**
 * @file
 * The imperfect-nest auto-compiler (compiler/nest_mapper.h): the
 * same SPMV kernel as examples/imperfect_loop.cpp, but generated
 * from two DFGs instead of hand-placed instructions — the closest
 * analogue of the paper's #pragma-annotated source flow (Fig. 9).
 *
 *     for (i = 0; i < rows; ++i)            // outer
 *         for (j = rD[i]; j < rD[i+1]; ++j) // inner, FIFO-fed
 *             sum += val[j] * vec[cols[j]];
 */

#include <cstdio>
#include <vector>

#include "core/marionette.h"

using namespace marionette;

int
main()
{
    constexpr int rows = 16;
    constexpr Word base_rd = 0, base_val = 32, base_cols = 256,
                   base_vec = 512;

    // ---- Outer-body DFG: (start, bound) = (rD[i], rD[i+1]). ----
    Dfg bounds;
    int i = bounds.addInput("i");
    NodeId start = bounds.addNode(Opcode::Load, Operand::input(i),
                                  Operand::none(), Operand::none(),
                                  "rD[i]");
    NodeId ip1 = bounds.addNode(Opcode::Add, Operand::input(i),
                                Operand::imm(1));
    NodeId bound = bounds.addNode(Opcode::Load, Operand::node(ip1),
                                  Operand::none(), Operand::none(),
                                  "rD[i+1]");
    bounds.addOutput("start", start);
    bounds.addOutput("bound", bound);

    // ---- Inner-body DFG: partial = val[j] * vec[cols[j]]. ----
    Dfg body;
    int j = body.addInput("j");
    NodeId va = body.addNode(Opcode::Add, Operand::input(j),
                             Operand::imm(base_val));
    NodeId v = body.addNode(Opcode::Load, Operand::node(va));
    NodeId ca = body.addNode(Opcode::Add, Operand::input(j),
                             Operand::imm(base_cols));
    NodeId c = body.addNode(Opcode::Load, Operand::node(ca));
    NodeId xa = body.addNode(Opcode::Add, Operand::node(c),
                             Operand::imm(base_vec));
    NodeId x = body.addNode(Opcode::Load, Operand::node(xa));
    NodeId prod = body.addNode(Opcode::Mul, Operand::node(v),
                               Operand::node(x));
    body.addOutput("partial", prod);

    MachineConfig config;
    MappedNest nest = mapImperfectNest(
        "auto_spmv", config, LoopSpec{0, rows, 1, 1}, bounds,
        body);
    std::printf("%s\n", nest.program.disassemble().c_str());

    // ---- Data. ----
    Rng rng(17);
    std::vector<Word> rd{0}, val, cols;
    for (int r = 0; r < rows; ++r) {
        int nnz = static_cast<int>(rng.nextBounded(7));
        for (int k = 0; k < nnz; ++k) {
            val.push_back(
                static_cast<Word>(rng.nextRange(-9, 9)));
            cols.push_back(
                static_cast<Word>(rng.nextBounded(32)));
        }
        rd.push_back(static_cast<Word>(val.size()));
    }
    std::vector<Word> vec(32);
    for (Word &v2 : vec)
        v2 = static_cast<Word>(rng.nextRange(-5, 5));

    Word golden = 0;
    for (int r = 0; r < rows; ++r)
        for (Word k = rd[static_cast<std::size_t>(r)];
             k < rd[static_cast<std::size_t>(r + 1)]; ++k)
            golden += val[static_cast<std::size_t>(k)] *
                      vec[static_cast<std::size_t>(
                          cols[static_cast<std::size_t>(k)])];

    MarionetteMachine machine(config);
    machine.load(nest.program);
    machine.injectData(nest.accumulatorPe, 1, 0);
    machine.scratchpad().load(base_rd, rd);
    machine.scratchpad().load(base_val, val);
    machine.scratchpad().load(base_cols, cols);
    machine.scratchpad().load(base_vec, vec);

    RunResult r = machine.run();
    Word sum =
        r.outputs[0].empty() ? 0 : r.outputs[0].back();
    std::printf("auto-compiled SPMV: %llu cycles, inner rounds="
                "%llu\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(
                    machine.peStats(nest.innerLoopPe)
                        .value("loop_rounds")));
    std::printf("dot product: machine=%d golden=%d -> %s\n", sum,
                golden, sum == golden ? "PASS" : "FAIL");
    return sum == golden ? 0 : 1;
}
