/**
 * @file
 * The SPMV imperfect nest on the *unified* pass pipeline: the same
 * kernel as examples/imperfect_loop.cpp, but expressed as a CDFG
 * with a data-dependent inner loop and compiled end to end by
 * Compiler (analyze/predicate/structure/assign/bind/lower/emit) —
 * the closest analogue of the paper's #pragma-annotated source flow
 * (Fig. 9).
 *
 *     for (i = 0; i < rows; ++i)            // counted outer
 *         for (j = rD[i]; j < rD[i+1]; ++j) // while-form inner
 *             sum += val[j] * vec[cols[j]];
 *
 * The inner loop is *condition-driven* (a Loop operator consuming
 * j < bound): the structure pass builds a WhileLoop region and the
 * lowering runs it with a guarded exit predicate under a static
 * per-row cap from the machine data, masking the slots past the
 * dynamic exit.  Because each row's edges are contiguous, the
 * loop-carried j needs no per-row reseeding: the previous row's
 * exit value *is* the next row's start.
 */

#include <cstdio>
#include <vector>

#include "core/marionette.h"

using namespace marionette;

namespace
{

constexpr int kRows = 16;
constexpr int kMaxNnz = 7; // rng.nextBounded(7): 0..6 per row.
constexpr Word kBaseRd = 0, kBaseVal = 32, kBaseCols = 256,
               kBaseVec = 512;

struct SpmvData
{
    std::vector<Word> rd{0};
    std::vector<Word> val;
    std::vector<Word> cols;
    std::vector<Word> vec;
};

SpmvData
makeData()
{
    SpmvData d;
    Rng rng(17);
    for (int r = 0; r < kRows; ++r) {
        int nnz = static_cast<int>(rng.nextBounded(7));
        for (int k = 0; k < nnz; ++k) {
            d.val.push_back(
                static_cast<Word>(rng.nextRange(-9, 9)));
            d.cols.push_back(
                static_cast<Word>(rng.nextBounded(32)));
        }
        d.rd.push_back(static_cast<Word>(d.val.size()));
    }
    d.vec.resize(32);
    for (Word &v : d.vec)
        v = static_cast<Word>(rng.nextRange(-5, 5));
    return d;
}

class SpmvWorkload : public Workload
{
  public:
    std::string name() const override { return "SPMV"; }
    std::string fullName() const override { return "Auto SPMV"; }
    std::string sizeDesc() const override { return "16 rows"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("auto_spmv");
        BlockId init = b.addBlock("init");
        BlockId outer = b.addLoopHeader("row_loop");
        BlockId bounds = b.addBlock("bounds");
        BlockId inner = b.addLoopHeader("edge_while");
        BlockId body = b.addBlock("edge_body");
        BlockId rlatch = b.addBlock("row_latch");
        BlockId done = b.addBlock("done");

        {
            Dfg &d = b.dfg(init);
            NodeId c = d.addNode(Opcode::Const, Operand::imm(0));
            d.addOutput("i", c);
        }
        {
            Dfg &d = b.dfg(outer);
            dfg_patterns::addCountedLoop(d, 0, 1, "rows");
        }
        {   // (start, bound) = (rD[i], rD[i+1]); start is implicit:
            // row edges are contiguous, so the carried j already
            // sits at rD[i] when row i begins.
            Dfg &d = b.dfg(bounds);
            int i = d.addInput("i");
            NodeId ip1 = d.addNode(Opcode::Add, Operand::input(i),
                                   Operand::imm(1));
            NodeId bound = d.addNode(Opcode::Load,
                                     Operand::node(ip1),
                                     Operand::none(),
                                     Operand::none(), "rd");
            d.addOutput("bound", bound);
        }
        {   // while (j < bound): condition-driven Loop operator.
            Dfg &d = b.dfg(inner);
            int j = d.addInput("j");
            int bound = d.addInput("bound");
            NodeId lt = d.addNode(Opcode::CmpLt, Operand::input(j),
                                  Operand::input(bound),
                                  Operand::none(), "j<bound");
            NodeId lp = d.addNode(Opcode::Loop, Operand::node(lt),
                                  Operand::imm(1));
            d.addOutput("continue", lp);
        }
        {   // sum += val[j] * vec[cols[j]]; ++j.
            Dfg &d = b.dfg(body);
            int j = d.addInput("j");
            int sum = d.addInput("sum");
            NodeId v = d.addNode(Opcode::Load, Operand::input(j),
                                 Operand::none(), Operand::none(),
                                 "val");
            NodeId c = d.addNode(Opcode::Load, Operand::input(j),
                                 Operand::none(), Operand::none(),
                                 "cols");
            NodeId x = d.addNode(Opcode::Load, Operand::node(c),
                                 Operand::none(), Operand::none(),
                                 "vec");
            NodeId prod = d.addNode(Opcode::Mul, Operand::node(v),
                                    Operand::node(x),
                                    Operand::none(), "partial");
            NodeId ns = d.addNode(Opcode::Add, Operand::input(sum),
                                  Operand::node(prod));
            NodeId nj = d.addNode(Opcode::Add, Operand::input(j),
                                  Operand::imm(1));
            d.addOutput("sum", ns);
            d.addOutput("j", nj);
        }
        for (BlockId lb : {rlatch, done}) {
            Dfg &d = b.dfg(lb);
            int x = d.addInput("x");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        }

        b.fall(init, outer);
        b.fall(outer, bounds);
        b.fall(bounds, inner);
        b.fall(inner, body);
        b.loopBack(body, inner);
        b.loopExit(inner, rlatch);
        b.loopBack(rlatch, outer);
        b.loopExit(outer, done);
        return b.finish();
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        SpmvData d = makeData();

        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["row_loop"] = {0, kRows, 1};
        spec.inductionPorts["row_loop"] = "i";
        spec.whileBounds["edge_while"] = kMaxNnz;
        spec.arrayBases["rd"] = kBaseRd;
        spec.arrayBases["val"] = kBaseVal;
        spec.arrayBases["cols"] = kBaseCols;
        spec.arrayBases["vec"] = kBaseVec;
        spec.scalars["j"] = 0;   // rD[0]
        spec.scalars["sum"] = 0;

        spec.memoryImage.assign(kBaseVec + 32, 0);
        auto put = [&](Word base, const std::vector<Word> &vs) {
            for (std::size_t k = 0; k < vs.size(); ++k)
                spec.memoryImage[static_cast<std::size_t>(base) +
                                 k] = vs[k];
        };
        put(kBaseRd, d.rd);
        put(kBaseVal, d.val);
        put(kBaseCols, d.cols);
        put(kBaseVec, d.vec);

        // Golden slot stream: one "sum" word per flattened slot
        // (kRows x kMaxNnz), frozen on masked slots.
        std::vector<Word> stream;
        Word sum = 0;
        Word j = 0;
        for (int r = 0; r < kRows; ++r) {
            Word bound = d.rd[static_cast<std::size_t>(r + 1)];
            for (int k = 0; k < kMaxNnz; ++k) {
                if (j < bound) {
                    sum += d.val[static_cast<std::size_t>(j)] *
                           d.vec[static_cast<std::size_t>(
                               d.cols[static_cast<std::size_t>(
                                   j)])];
                    ++j;
                }
                stream.push_back(sum);
            }
        }
        spec.observePorts = {"sum"};
        spec.expectedOutputs = {std::move(stream)};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        SpmvData d = makeData();
        rec.block(0);
        rec.round(1);
        Word sum = 0;
        for (int r = 0; r < kRows; ++r) {
            rec.iteration(1);
            rec.block(2);
            rec.round(3);
            for (Word k = d.rd[static_cast<std::size_t>(r)];
                 k < d.rd[static_cast<std::size_t>(r + 1)]; ++k) {
                rec.iteration(3);
                rec.block(4);
                sum += d.val[static_cast<std::size_t>(k)] *
                       d.vec[static_cast<std::size_t>(
                           d.cols[static_cast<std::size_t>(k)])];
            }
            rec.block(5);
        }
        rec.block(6);
        return static_cast<std::uint64_t>(sum);
    }
};

} // namespace

int
main()
{
    // One row taller than the 4x4 prototype: the guarded-exit
    // lowering spends a few PEs on the while-loop's active chain
    // and the row-bound plumbing.
    MachineConfig config;
    config.rows = 5;
    config.instrMemBytes = 4 * 1024;
    SpmvWorkload spmv;
    CompileResult r = Compiler(config).compile(spmv);
    if (!r.ok()) {
        std::printf("compile failed:\n%s", r.report.toString().c_str());
        return 1;
    }
    std::printf("%s\n", r.kernel->program.disassemble().c_str());
    std::printf("compile report:\n%s\n",
                r.report.toString().c_str());

    MarionetteMachine machine(config);
    r.kernel->prepare(machine);
    RunResult run = machine.run(r.kernel->cycleBudget);
    std::string err = r.kernel->validate(machine, run);

    Word sum = run.outputs[0].empty() ? 0 : run.outputs[0].back();
    SpmvData d = makeData();
    Word golden = 0;
    for (std::size_t r2 = 0; r2 + 1 < d.rd.size(); ++r2)
        for (Word k = d.rd[r2]; k < d.rd[r2 + 1]; ++k)
            golden += d.val[static_cast<std::size_t>(k)] *
                      d.vec[static_cast<std::size_t>(
                          d.cols[static_cast<std::size_t>(k)])];

    std::printf("auto-compiled SPMV (while-form inner loop): "
                "%llu cycles\n",
                static_cast<unsigned long long>(run.cycles));
    std::printf("dot product: machine=%d golden=%d, stream %s -> "
                "%s\n",
                sum, golden,
                err.empty() ? "bit-exact" : err.c_str(),
                (sum == golden && err.empty()) ? "PASS" : "FAIL");
    return (sum == golden && err.empty()) ? 0 : 1;
}
