/**
 * @file
 * One-shot reproduction driver: prints every table and figure of
 * the paper's evaluation section from this repository's models,
 * then compiles the supported kernels through the CDFG->Program
 * pipeline and cross-validates them on the cycle-accurate machine.
 * (The bench/ binaries regenerate the same artifacts one at a time
 * with benchmark timing; this example is the human-readable tour.)
 *
 * The model x workload grid behind the tables is evaluated through
 * the parallel sweep runner (sim/sweep.h); results are keyed by
 * (model, workload), so the artifact is identical on any thread
 * count.
 *
 * Flags:
 *   --list         print the 13 workload abbreviations and exit.
 *   --kernels=a,b  restrict the grid (and the machine validation)
 *                  to the named kernels.
 *   --jobs=N       sweep-runner thread count (default: hardware).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "compiler/program_cache.h"
#include "core/marionette.h"

using namespace marionette;

namespace
{

struct Options
{
    bool list = false;
    int jobs = 0;
    std::vector<std::string> kernels; ///< empty = all 13.
};

bool
parseArgs(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--list") == 0) {
            opts.list = true;
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            opts.jobs = std::atoi(arg + 7);
        } else if (std::strncmp(arg, "--kernels=", 10) == 0) {
            std::string rest = arg + 10;
            std::size_t pos = 0;
            while (pos < rest.size()) {
                std::size_t comma = rest.find(',', pos);
                if (comma == std::string::npos)
                    comma = rest.size();
                std::string name = rest.substr(pos, comma - pos);
                if (!name.empty()) {
                    if (findWorkload(name) == nullptr) {
                        std::fprintf(stderr,
                                     "unknown kernel '%s' (see "
                                     "--list)\n",
                                     name.c_str());
                        return false;
                    }
                    opts.kernels.push_back(name);
                }
                pos = comma + 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: paper_eval [--list] "
                         "[--kernels=a,b,c] [--jobs=N]\n");
            return false;
        }
    }
    return true;
}

bool
selected(const Options &opts, const std::string &name)
{
    if (opts.kernels.empty())
        return true;
    for (const std::string &k : opts.kernels)
        if (k == name || findWorkload(k)->name() == name)
            return true;
    return false;
}

/** Compile the selected kernels on two fabrics through the shared
 *  program cache and run them on the cycle-accurate machine. */
void
machineValidation(const Options &opts, const SweepRunner &runner)
{
    MachineConfig big;
    big.rows = 8;
    big.cols = 8;
    big.scratchpadBytes = 512 * 1024;
    big.instrMemBytes = 64 * 1024;
    MachineConfig alt = big;
    alt.meshHopLatency = 2;
    alt.dataNetLatency = 12;
    alt.scratchpadBanks = 8;

    std::vector<KernelSweepJob> jobs;
    std::vector<std::string> labels;
    for (const Workload *w : allWorkloads()) {
        if (!selected(opts, w->name()))
            continue;
        for (const MachineConfig &config : {big, alt}) {
            jobs.push_back(KernelSweepJob{w, config});
            labels.push_back(w->name());
        }
    }

    ProgramCache cache;
    std::vector<KernelSweepResult> results =
        runner.runKernels(jobs, cache);

    std::printf("\n== Compiler pipeline: Table-5 kernels on the "
                "cycle-accurate machine ==\n");
    std::printf("  %-6s %-5s %10s %10s  %s\n", "kernel", "cfg",
                "cycles", "model", "result");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const KernelSweepResult &r = results[i];
        const char *cfg = (i % 2 == 0) ? "8x8" : "8x8s";
        if (!r.compiled) {
            if (i % 2 == 0) // report each kernel's rejection once.
                std::printf("  %-6s %-5s %10s %10s  rejected: %s\n",
                            labels[i].c_str(), "-", "-", "-",
                            r.diagnostic.c_str());
            continue;
        }
        std::printf("  %-6s %-5s %10llu %10.0f  %s\n",
                    labels[i].c_str(), cfg,
                    static_cast<unsigned long long>(r.run.cycles),
                    r.modelEstimate,
                    r.validated
                        ? "bit-exact vs golden"
                        : r.validationError.c_str());
    }
    std::printf("  program cache: %llu compile(s), %llu hit(s) "
                "across %zu jobs\n",
                static_cast<unsigned long long>(cache.misses()),
                static_cast<unsigned long long>(cache.hits()),
                jobs.size());
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts))
        return 1;
    if (opts.list) {
        for (const Workload *w : allWorkloads())
            std::printf("%-6s %s (%s)\n", w->name().c_str(),
                        w->fullName().c_str(),
                        w->sizeDesc().c_str());
        return 0;
    }

    ModelParams params;
    Features base_f;
    base_f.controlNetwork = false;
    base_f.agileAssignment = false;
    Features net_f = base_f;
    net_f.controlNetwork = true;
    Features full_f; // everything on.

    auto vn = makeVonNeumannPe(params);
    auto df = makeDataflowPe(params);
    auto mar_base = makeMarionette(params, base_f);
    auto mar_net = makeMarionette(params, net_f);
    auto mar = makeMarionette(params, full_f);
    auto sb = makeSoftbrain(params);
    auto tia = makeTia(params);
    auto revel = makeRevel(params);
    auto riptide = makeRiptide(params);

    std::vector<WorkloadProfile> profiles;
    for (const WorkloadProfile &p : allProfiles())
        if (selected(opts, p.name))
            profiles.push_back(p);
    std::vector<WorkloadProfile> intensive;
    for (const WorkloadProfile &p : intensiveProfiles())
        if (selected(opts, p.name))
            intensive.push_back(p);
    std::vector<const ArchModel *> models{
        vn.get(),  df.get(),    mar_base.get(),
        mar_net.get(), mar.get(), sb.get(),
        tia.get(), revel.get(), riptide.get()};
    SweepRunner runner(opts.jobs);
    CycleTable table = runSuiteParallel(models, profiles, runner);

    std::printf("== Table 1: control flow forms ==\n");
    for (const WorkloadProfile &p : profiles)
        std::printf("  %s\n", toString(p.controlFlow).c_str());

    std::printf("\n== Table 3: capability matrix ==\n%s",
                renderCapabilityMatrix().c_str());

    MachineConfig config;
    std::printf("\n== Table 4: area & power (28nm) ==\n%s",
                marionetteAreaBreakdown(config).toString().c_str());

    std::printf("\n== Table 6: network area comparison ==\n%s",
                toString(networkAreaComparison(config)).c_str());

    std::printf("\n== Fig 11: PE execution models "
                "(normalized to von Neumann PE) ==\n%s",
                renderSpeedupTable(table, vn->name(),
                                   {vn->name(), df->name(),
                                    mar_base->name()},
                                   intensive)
                    .c_str());

    std::printf("\n== Fig 12: + control network ==\n%s",
                renderSpeedupTable(table, mar_base->name(),
                                   {mar_net->name()}, intensive)
                    .c_str());

    std::printf("\n== Fig 13: control network timing ==\n%s",
                toString(delaySweep()).c_str());

    std::printf("\n== Fig 14: + Agile PE Assignment ==\n%s",
                renderSpeedupTable(table, mar_net->name(),
                                   {mar->name()}, intensive)
                    .c_str());

    std::printf("\n== Fig 15: Agile utilization effects ==\n");
    for (const WorkloadProfile &p : intensive) {
        const ModelResult &s = table.at(mar_net->name()).at(p.name);
        const ModelResult &a = table.at(mar->name()).at(p.name);
        if (s.outerBbPeUtil <= 0)
            continue;
        std::printf("  %-6s outerBB %5.1f%% -> %5.1f%% (%5.1fx)   "
                    "pipeline %5.1f%% -> %5.1f%% (%4.2fx)\n",
                    p.name.c_str(), 100 * s.outerBbPeUtil,
                    100 * a.outerBbPeUtil,
                    a.outerBbPeUtil / s.outerBbPeUtil,
                    100 * s.pipelineUtil, 100 * a.pipelineUtil,
                    a.pipelineUtil / s.pipelineUtil);
    }

    std::printf("\n== Fig 16: network vs Agile speedup split ==\n");
    for (const WorkloadProfile &p : intensive) {
        double net_gain =
            table.at(mar_base->name()).at(p.name).cycles /
            table.at(mar_net->name()).at(p.name).cycles;
        double agile_gain =
            table.at(mar_net->name()).at(p.name).cycles /
            table.at(mar->name()).at(p.name).cycles;
        std::printf("  %-6s network %4.0f%%   agile %4.0f%%\n",
                    p.name.c_str(), 100 * (net_gain - 1),
                    100 * (agile_gain - 1));
    }

    std::printf("\n== Fig 17: vs state of the art "
                "(normalized to Softbrain) ==\n%s",
                renderSpeedupTable(table, sb->name(),
                                   {sb->name(), tia->name(),
                                    revel->name(), riptide->name(),
                                    mar->name()},
                                   profiles)
                    .c_str());

    if (!intensive.empty()) {
        std::printf("\nMarionette geomean speedups (intensive): "
                    "Softbrain %.2fx, TIA %.2fx, REVEL %.2fx, "
                    "RipTide %.2fx\n",
                    speedups(table, sb->name(), mar->name(),
                             intensive).back(),
                    speedups(table, tia->name(), mar->name(),
                             intensive).back(),
                    speedups(table, revel->name(), mar->name(),
                             intensive).back(),
                    speedups(table, riptide->name(), mar->name(),
                             intensive).back());
    }

    // Full-LDPC composite (Fig. 17 note): intensive LDPC decode
    // plus a non-intensive front end (Gray-processing-like).
    if (selected(opts, "LDPC") && selected(opts, "GP")) {
        auto composite = [&](const char *arch) {
            return table.at(arch).at("LDPC").cycles +
                   table.at(arch).at("GP").cycles;
        };
        std::printf("Full LDPC application: Softbrain %.2fx, TIA "
                    "%.2fx, REVEL %.2fx, RipTide %.2fx\n",
                    composite(sb->name().c_str()) /
                        composite(mar->name().c_str()),
                    composite(tia->name().c_str()) /
                        composite(mar->name().c_str()),
                    composite(revel->name().c_str()) /
                        composite(mar->name().c_str()),
                    composite(riptide->name().c_str()) /
                        composite(mar->name().c_str()));
    }

    machineValidation(opts, runner);
    return 0;
}
