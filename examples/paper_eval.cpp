/**
 * @file
 * One-shot reproduction driver: prints every table and figure of
 * the paper's evaluation section from this repository's models.
 * (The bench/ binaries regenerate the same artifacts one at a time
 * with benchmark timing; this example is the human-readable tour.)
 *
 * The model x workload grid behind the tables is evaluated through
 * the parallel sweep runner (sim/sweep.h); results are keyed by
 * (model, workload), so the artifact is identical on any thread
 * count.
 */

#include <cstdio>

#include "core/marionette.h"

using namespace marionette;

int
main()
{
    ModelParams params;
    Features base_f;
    base_f.controlNetwork = false;
    base_f.agileAssignment = false;
    Features net_f = base_f;
    net_f.controlNetwork = true;
    Features full_f; // everything on.

    auto vn = makeVonNeumannPe(params);
    auto df = makeDataflowPe(params);
    auto mar_base = makeMarionette(params, base_f);
    auto mar_net = makeMarionette(params, net_f);
    auto mar = makeMarionette(params, full_f);
    auto sb = makeSoftbrain(params);
    auto tia = makeTia(params);
    auto revel = makeRevel(params);
    auto riptide = makeRiptide(params);

    const auto &profiles = allProfiles();
    auto intensive = intensiveProfiles();
    std::vector<const ArchModel *> models{
        vn.get(),  df.get(),    mar_base.get(),
        mar_net.get(), mar.get(), sb.get(),
        tia.get(), revel.get(), riptide.get()};
    SweepRunner runner;
    CycleTable table = runSuiteParallel(models, profiles, runner);

    std::printf("== Table 1: control flow forms ==\n");
    for (const WorkloadProfile &p : profiles)
        std::printf("  %s\n", toString(p.controlFlow).c_str());

    std::printf("\n== Table 3: capability matrix ==\n%s",
                renderCapabilityMatrix().c_str());

    MachineConfig config;
    std::printf("\n== Table 4: area & power (28nm) ==\n%s",
                marionetteAreaBreakdown(config).toString().c_str());

    std::printf("\n== Table 6: network area comparison ==\n%s",
                toString(networkAreaComparison(config)).c_str());

    std::printf("\n== Fig 11: PE execution models "
                "(normalized to von Neumann PE) ==\n%s",
                renderSpeedupTable(table, vn->name(),
                                   {vn->name(), df->name(),
                                    mar_base->name()},
                                   intensive)
                    .c_str());

    std::printf("\n== Fig 12: + control network ==\n%s",
                renderSpeedupTable(table, mar_base->name(),
                                   {mar_net->name()}, intensive)
                    .c_str());

    std::printf("\n== Fig 13: control network timing ==\n%s",
                toString(delaySweep()).c_str());

    std::printf("\n== Fig 14: + Agile PE Assignment ==\n%s",
                renderSpeedupTable(table, mar_net->name(),
                                   {mar->name()}, intensive)
                    .c_str());

    std::printf("\n== Fig 15: Agile utilization effects ==\n");
    for (const WorkloadProfile &p : intensive) {
        const ModelResult &s = table.at(mar_net->name()).at(p.name);
        const ModelResult &a = table.at(mar->name()).at(p.name);
        if (s.outerBbPeUtil <= 0)
            continue;
        std::printf("  %-6s outerBB %5.1f%% -> %5.1f%% (%5.1fx)   "
                    "pipeline %5.1f%% -> %5.1f%% (%4.2fx)\n",
                    p.name.c_str(), 100 * s.outerBbPeUtil,
                    100 * a.outerBbPeUtil,
                    a.outerBbPeUtil / s.outerBbPeUtil,
                    100 * s.pipelineUtil, 100 * a.pipelineUtil,
                    a.pipelineUtil / s.pipelineUtil);
    }

    std::printf("\n== Fig 16: network vs Agile speedup split ==\n");
    for (const WorkloadProfile &p : intensive) {
        double net_gain =
            table.at(mar_base->name()).at(p.name).cycles /
            table.at(mar_net->name()).at(p.name).cycles;
        double agile_gain =
            table.at(mar_net->name()).at(p.name).cycles /
            table.at(mar->name()).at(p.name).cycles;
        std::printf("  %-6s network %4.0f%%   agile %4.0f%%\n",
                    p.name.c_str(), 100 * (net_gain - 1),
                    100 * (agile_gain - 1));
    }

    std::printf("\n== Fig 17: vs state of the art "
                "(normalized to Softbrain) ==\n%s",
                renderSpeedupTable(table, sb->name(),
                                   {sb->name(), tia->name(),
                                    revel->name(), riptide->name(),
                                    mar->name()},
                                   profiles)
                    .c_str());

    std::printf("\nMarionette geomean speedups (intensive): "
                "Softbrain %.2fx, TIA %.2fx, REVEL %.2fx, "
                "RipTide %.2fx\n",
                speedups(table, sb->name(), mar->name(),
                         intensive).back(),
                speedups(table, tia->name(), mar->name(),
                         intensive).back(),
                speedups(table, revel->name(), mar->name(),
                         intensive).back(),
                speedups(table, riptide->name(), mar->name(),
                         intensive).back());

    // Full-LDPC composite (Fig. 17 note): intensive LDPC decode
    // plus a non-intensive front end (Gray-processing-like).
    auto composite = [&](const char *arch) {
        return table.at(arch).at("LDPC").cycles +
               table.at(arch).at("GP").cycles;
    };
    std::printf("Full LDPC application: Softbrain %.2fx, TIA "
                "%.2fx, REVEL %.2fx, RipTide %.2fx\n",
                composite(sb->name().c_str()) /
                    composite(mar->name().c_str()),
                composite(tia->name().c_str()) /
                    composite(mar->name().c_str()),
                composite(revel->name().c_str()) /
                    composite(mar->name().c_str()),
                composite(riptide->name().c_str()) /
                    composite(mar->name().c_str()));
    return 0;
}
