/**
 * @file
 * One-shot reproduction driver: prints every table and figure of
 * the paper's evaluation section from this repository's models,
 * then compiles the supported kernels through the CDFG->Program
 * pipeline and cross-validates them on the cycle-accurate machine.
 * (The bench/ binaries regenerate the same artifacts one at a time
 * with benchmark timing; this example is the human-readable tour.)
 *
 * The model x workload grid behind the tables is evaluated through
 * the parallel sweep runner (sim/sweep.h); results are keyed by
 * (model, workload), so the artifact is identical on any thread
 * count.
 *
 * Flags:
 *   --list         print the 13 workload abbreviations and exit.
 *   --kernels=a,b  restrict the grid (and the machine validation)
 *                  to the named kernels.
 *   --jobs=N       sweep-runner thread count (default: hardware).
 *   --report=PATH  write machine-readable per-kernel compile
 *                  coverage (status, failed pass, cycles, compile
 *                  time) as JSON — the bench trajectory's compiler
 *                  data points (BENCH_compile_coverage.json).
 *   --check-coverage=PATH
 *                  compare the current coverage (kernel, compiled,
 *                  failed pass, *and cycles within a tolerance
 *                  band*) against a checked-in expectation and
 *                  exit non-zero on any difference, so a change
 *                  can never quietly drop a working kernel or
 *                  regress its mapped cycles.
 *   --placer=snake|cost
 *                  backend placement algorithm for the machine
 *                  validation (default: cost; snake is the legacy
 *                  boustrophedon baseline).
 *   --mapped-report=PATH
 *                  run the snake-vs-cost placement A/B over both
 *                  evaluation fabrics and write the mapped-cycles
 *                  comparison (per-kernel cycles, hop/congestion
 *                  stats, aggregate reduction) as JSON
 *                  (BENCH_mapped_cycles.json).
 *   --unroll=N     spatial unroll factor cap for the machine
 *                  validation (0 = automatic, 1 = replication
 *                  off; see CompilerOptions::unrollFactor).
 *   --unroll-ablation=PATH
 *                  compile GEMM and LDPC at a ladder of unroll
 *                  caps on the primary fabric, run each on the
 *                  machine, and write the per-factor cycles /
 *                  chosen-factor / bit-exactness table as JSON
 *                  (BENCH_unroll_ablation.json).
 *   --fast-forward=on|off
 *                  force the steady-state fast-forward engine for
 *                  the machine validation (default: the config's
 *                  default, on).  With "on" every selected kernel
 *                  is additionally run both ways and the results
 *                  compared — a non-zero exit on any divergence is
 *                  CI's fast-forward smoke gate.
 *   --snapshot-stats
 *                  run the machine validation twice through a
 *                  snapshot warm-start cache and print the
 *                  checkpoint hit/miss counters and the prepare
 *                  time the warm starts saved.
 *   --serve-smoke  push a small deterministic multi-tenant load
 *                  through the serving core (serve/server.h) with
 *                  spatial co-tenancy enabled and exit non-zero if
 *                  any response fails, diverges from the goldens,
 *                  or the latency tail blows out — CI's serving
 *                  smoke gate.
 *
 * Every JSON artifact opens with a "schema_version" field (see
 * kReportSchemaVersion) so downstream consumers can detect shape
 * changes.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/program_cache.h"
#include "core/marionette.h"
#include "serve/server.h"

using namespace marionette;

namespace
{

struct Options
{
    bool list = false;
    int jobs = 0;
    std::vector<std::string> kernels; ///< empty = all 13.
    std::string reportPath;
    std::string checkCoveragePath;
    std::string mappedReportPath;
    PlacerKind placer = PlacerKind::Cost;
    /** Unroll cap forwarded to CompilerOptions::unrollFactor
     *  (0 = automatic, 1 = replication off). */
    int unrollFactor = 0;
    /** Unroll-factor ablation mode: compile GEMM/LDPC at a ladder
     *  of caps and write the table to this path. */
    std::string unrollAblationPath;
    /** Steady-state fast-forward: -1 = config default (on),
     *  0 = forced off, 1 = forced on *plus* the both-ways
     *  bit-exactness smoke comparison. */
    int fastForward = -1;
    /** Print snapshot warm-start cache statistics (runs the
     *  validation grid twice through a SnapshotCache). */
    bool snapshotStats = false;
    /** Serving smoke mode: push a small deterministic load through
     *  the multi-tenant ServeCore and gate on bit-exactness. */
    bool serveSmoke = false;
    /** Fault-resilience mode: sweep seeded fault plans over the
     *  selected kernels instead of the model tour. */
    bool faults = false;
    /** Single (dead PEs, dead links) cell; -1 = the full grid. */
    int faultDeadPes = -1;
    int faultDeadLinks = -1;
    std::uint64_t faultSeed = 1;
    std::string resilienceReportPath;
};

bool
usageError(const char *why, const char *detail)
{
    std::fprintf(stderr, "paper_eval: %s%s%s\n", why,
                 detail ? ": " : "", detail ? detail : "");
    std::fprintf(stderr,
                 "usage: paper_eval [--list] [--kernels=a,b,c] "
                 "[--jobs=N] [--report=PATH] "
                 "[--check-coverage=PATH] [--placer=snake|cost] "
                 "[--mapped-report=PATH] [--unroll=N] "
                 "[--unroll-ablation=PATH] "
                 "[--fast-forward=on|off] [--snapshot-stats] "
                 "[--serve-smoke] [--faults] "
                 "[--fault-grid=DEADPES,DEADLINKS] "
                 "[--fault-seed=N] [--resilience-report=PATH]\n");
    return false;
}

/** Strict bounded integer parse; no atoi silence. */
bool
parseCount(const char *text, long min, long max, long &out)
{
    if (*text == '\0')
        return false;
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < min || v > max)
        return false;
    out = v;
    return true;
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--list") == 0) {
            opts.list = true;
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            long jobs = 0;
            if (!parseCount(arg + 7, 0, 4096, jobs))
                return usageError("bad --jobs value (want 0..4096; "
                                  "0 = auto-detect)",
                                  arg + 7);
            opts.jobs = static_cast<int>(jobs);
        } else if (std::strncmp(arg, "--kernels=", 10) == 0) {
            std::string rest = arg + 10;
            if (rest.empty())
                return usageError("--kernels needs at least one "
                                  "name (see --list)",
                                  nullptr);
            std::size_t pos = 0;
            while (pos < rest.size()) {
                std::size_t comma = rest.find(',', pos);
                if (comma == std::string::npos)
                    comma = rest.size();
                std::string name = rest.substr(pos, comma - pos);
                if (!name.empty()) {
                    if (findWorkload(name) == nullptr)
                        return usageError(
                            "unknown kernel (see --list)",
                            name.c_str());
                    opts.kernels.push_back(name);
                }
                pos = comma + 1;
            }
            if (opts.kernels.empty())
                return usageError("--kernels needs at least one "
                                  "name (see --list)",
                                  nullptr);
        } else if (std::strncmp(arg, "--report=", 9) == 0) {
            if (arg[9] == '\0')
                return usageError("--report needs a path", nullptr);
            opts.reportPath = arg + 9;
        } else if (std::strncmp(arg, "--check-coverage=", 17) ==
                   0) {
            if (arg[17] == '\0')
                return usageError("--check-coverage needs a path",
                                  nullptr);
            opts.checkCoveragePath = arg + 17;
        } else if (std::strncmp(arg, "--mapped-report=", 16) == 0) {
            if (arg[16] == '\0')
                return usageError("--mapped-report needs a path",
                                  nullptr);
            opts.mappedReportPath = arg + 16;
        } else if (std::strncmp(arg, "--unroll=", 9) == 0) {
            long factor = 0;
            if (!parseCount(arg + 9, 0, 1024, factor))
                return usageError("bad --unroll value (want "
                                  "0..1024; 0 = automatic)",
                                  arg + 9);
            opts.unrollFactor = static_cast<int>(factor);
        } else if (std::strncmp(arg, "--unroll-ablation=", 18) ==
                   0) {
            if (arg[18] == '\0')
                return usageError("--unroll-ablation needs a path",
                                  nullptr);
            opts.unrollAblationPath = arg + 18;
        } else if (std::strncmp(arg, "--placer=", 9) == 0) {
            if (!parsePlacerName(arg + 9, opts.placer))
                return usageError("unknown placer (snake|cost)",
                                  arg + 9);
        } else if (std::strncmp(arg, "--fast-forward=", 15) == 0) {
            if (std::strcmp(arg + 15, "on") == 0)
                opts.fastForward = 1;
            else if (std::strcmp(arg + 15, "off") == 0)
                opts.fastForward = 0;
            else
                return usageError("bad --fast-forward value "
                                  "(want on|off)",
                                  arg + 15);
        } else if (std::strcmp(arg, "--snapshot-stats") == 0) {
            opts.snapshotStats = true;
        } else if (std::strcmp(arg, "--serve-smoke") == 0) {
            opts.serveSmoke = true;
        } else if (std::strcmp(arg, "--faults") == 0) {
            opts.faults = true;
        } else if (std::strncmp(arg, "--fault-grid=", 13) == 0) {
            std::string rest = arg + 13;
            std::size_t comma = rest.find(',');
            long dead_pes = 0, dead_links = 0;
            if (comma == std::string::npos ||
                !parseCount(rest.substr(0, comma).c_str(), 0, 99,
                            dead_pes) ||
                !parseCount(rest.substr(comma + 1).c_str(), 0, 99,
                            dead_links))
                return usageError(
                    "bad --fault-grid value (want DEADPES,"
                    "DEADLINKS, each 0..99)",
                    arg + 13);
            opts.faultDeadPes = static_cast<int>(dead_pes);
            opts.faultDeadLinks = static_cast<int>(dead_links);
        } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
            long seed = 0;
            if (!parseCount(arg + 13, 0, 1'000'000'000, seed))
                return usageError("bad --fault-seed value",
                                  arg + 13);
            opts.faultSeed = static_cast<std::uint64_t>(seed);
        } else if (std::strncmp(arg, "--resilience-report=", 20) ==
                   0) {
            if (arg[20] == '\0')
                return usageError("--resilience-report needs a "
                                  "path",
                                  nullptr);
            opts.resilienceReportPath = arg + 20;
        } else {
            return usageError("unknown flag", arg);
        }
    }
    if (!opts.faults &&
        (opts.faultDeadPes >= 0 ||
         !opts.resilienceReportPath.empty()))
        return usageError("--fault-grid/--resilience-report "
                          "require --faults",
                          nullptr);
    return true;
}

bool
selected(const Options &opts, const std::string &name)
{
    if (opts.kernels.empty())
        return true;
    for (const std::string &k : opts.kernels)
        if (k == name || findWorkload(k)->name() == name)
            return true;
    return false;
}

/** Per-kernel compile/run coverage on the primary fabric. */
struct KernelCoverage
{
    std::string kernel;
    bool compiled = false;
    std::string failedPass;
    std::string reason;
    bool validated = false;
    std::uint64_t cycles = 0;
    double modelCycles = 0.0;
    /** Schedule-aware model estimate (trip counts, recurrence IIs
     *  and predicted link loads of the placed program). */
    double scheduledCycles = 0.0;
    std::int64_t compileMicros = 0;
};

/** Compile the selected kernels on two fabrics through the shared
 *  program cache and run them on the cycle-accurate machine.
 *  Returns the per-kernel coverage on the primary fabric. */
MachineConfig
primaryFabric()
{
    MachineConfig big;
    big.rows = 10;
    big.cols = 10;
    big.scratchpadBytes = 512 * 1024;
    big.instrMemBytes = 64 * 1024;
    return big;
}

MachineConfig
slowMeshFabric()
{
    MachineConfig alt = primaryFabric();
    alt.meshHopLatency = 2;
    alt.dataNetLatency = 12;
    alt.scratchpadBanks = 8;
    return alt;
}

std::vector<KernelCoverage>
machineValidation(const Options &opts, const SweepRunner &runner)
{
    MachineConfig big = primaryFabric();
    MachineConfig alt = slowMeshFabric();
    if (opts.fastForward >= 0) {
        big.fastForward = opts.fastForward != 0;
        alt.fastForward = opts.fastForward != 0;
    }

    CompilerOptions copts;
    copts.placer = opts.placer;
    copts.unrollFactor = opts.unrollFactor;
    std::vector<KernelSweepJob> jobs;
    std::vector<std::string> labels;
    for (const Workload *w : allWorkloads()) {
        if (!selected(opts, w->name()))
            continue;
        for (const MachineConfig &config : {big, alt}) {
            jobs.push_back(KernelSweepJob{w, config, 0, copts});
            labels.push_back(w->name());
        }
    }

    ProgramCache cache;
    std::vector<KernelSweepResult> results =
        runner.runKernels(jobs, cache);

    std::printf("\n== Compiler pipeline: Table-5 kernels on the "
                "cycle-accurate machine (%s placer) ==\n",
                std::string(placerName(opts.placer)).c_str());
    std::printf("  %-6s %-5s %10s %10s %6s %8s  %s\n", "kernel",
                "cfg", "cycles", "model", "hops", "maxlink",
                "result");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const KernelSweepResult &r = results[i];
        const char *cfg = (i % 2 == 0) ? "10x10" : "10x10s";
        if (!r.compiled) {
            if (i % 2 == 0) // report each kernel's rejection once.
                std::printf("  %-6s %-5s %10s %10s %6s %8s  "
                            "rejected: %s\n",
                            labels[i].c_str(), "-", "-", "-", "-",
                            "-", r.diagnostic.c_str());
            continue;
        }
        std::printf("  %-6s %-5s %10llu %10.0f %6.2f %8llu  %s\n",
                    labels[i].c_str(), cfg,
                    static_cast<unsigned long long>(r.run.cycles),
                    r.modelEstimate, r.congestion.meanHops,
                    static_cast<unsigned long long>(
                        r.congestion.maxLinkLoad),
                    r.validated
                        ? "bit-exact vs golden"
                        : r.validationError.c_str());
    }
    std::printf("  program cache: %llu compile(s), %llu hit(s) "
                "across %zu jobs\n",
                static_cast<unsigned long long>(cache.misses()),
                static_cast<unsigned long long>(cache.hits()),
                jobs.size());

    // Coverage record from the primary-fabric results (even job
    // indices), with a freshly-timed compile per kernel.
    std::vector<KernelCoverage> coverage;
    Compiler compiler(big, copts);
    for (std::size_t i = 0; i < jobs.size(); i += 2) {
        const KernelSweepResult &r = results[i];
        KernelCoverage c;
        c.kernel = labels[i];
        c.compiled = r.compiled;
        c.validated = r.validated;
        if (r.compiled) {
            c.cycles = r.run.cycles;
            c.modelCycles = r.modelEstimate;
        }
        auto t0 = std::chrono::steady_clock::now();
        CompileResult cr =
            compiler.compile(*jobs[i].workload);
        c.compileMicros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        c.failedPass = cr.report.failedPass;
        c.reason = cr.report.reason;
        c.scheduledCycles = cr.report.scheduledCycleEstimate;
        coverage.push_back(std::move(c));
    }
    return coverage;
}

/**
 * The fast-forward smoke gate (--fast-forward=on): every selected
 * kernel runs on the primary fabric with the engine forced off and
 * forced on, and the two runs must agree on cycles, fires and every
 * output word.  The engine only ever skips work it has proven
 * redundant, so *any* divergence is a bug; CI runs this over the
 * long kernels (LDPC, VI).  The exhaustive byte-level check
 * (renderAllStats, memory dumps, all three sim paths) lives in
 * tests/fastforward_equivalence_test.cc.
 */
bool
fastForwardSmoke(const Options &opts, const SweepRunner &runner)
{
    CompilerOptions copts;
    copts.placer = opts.placer;
    copts.unrollFactor = opts.unrollFactor;
    std::vector<KernelSweepJob> jobs;
    std::vector<std::string> labels;
    for (const Workload *w : allWorkloads()) {
        if (!selected(opts, w->name()))
            continue;
        for (bool ff : {false, true}) {
            MachineConfig config = primaryFabric();
            config.fastForward = ff;
            jobs.push_back(KernelSweepJob{w, config, 0, copts});
        }
        labels.push_back(w->name());
    }

    ProgramCache cache;
    std::vector<KernelSweepResult> results =
        runner.runKernels(jobs, cache);

    std::printf("\n== Fast-forward smoke gate (engine off vs on, "
                "primary fabric) ==\n");
    bool ok = true;
    for (std::size_t k = 0; k < labels.size(); ++k) {
        const KernelSweepResult &off = results[2 * k];
        const KernelSweepResult &on = results[2 * k + 1];
        if (!off.compiled) {
            std::printf("  %-6s rejected (%s) — skipped\n",
                        labels[k].c_str(), off.diagnostic.c_str());
            continue;
        }
        bool same = off.run.cycles == on.run.cycles &&
                    off.run.totalFires == on.run.totalFires &&
                    off.run.outputs == on.run.outputs &&
                    off.validated && on.validated;
        std::printf("  %-6s %10llu cycles  %s\n", labels[k].c_str(),
                    static_cast<unsigned long long>(on.run.cycles),
                    same ? "identical off/on, bit-exact vs golden"
                         : "DIVERGED");
        if (!same) {
            std::fprintf(stderr,
                         "fast-forward smoke: %s diverged (off: "
                         "%llu cycles, on: %llu cycles)\n",
                         labels[k].c_str(),
                         static_cast<unsigned long long>(
                             off.run.cycles),
                         static_cast<unsigned long long>(
                             on.run.cycles));
            ok = false;
        }
    }
    return ok;
}

/**
 * Snapshot warm-start statistics (--snapshot-stats): the validation
 * grid runs twice through a SnapshotCache, so the second pass
 * restores every cell's post-prepare checkpoint instead of
 * re-preparing.  Prints the checkpoint hit/miss counters and the
 * prepare time the warm starts saved (sweep-layer machinery the
 * sweeps and ablations share; see SnapshotCache).
 */
void
snapshotStatsRun(const Options &opts, const SweepRunner &runner)
{
    CompilerOptions copts;
    copts.placer = opts.placer;
    copts.unrollFactor = opts.unrollFactor;
    std::vector<KernelSweepJob> jobs;
    for (int rep = 0; rep < 2; ++rep)
        for (const Workload *w : allWorkloads()) {
            if (!selected(opts, w->name()))
                continue;
            jobs.push_back(
                KernelSweepJob{w, primaryFabric(), 0, copts});
        }

    ProgramCache cache;
    SnapshotCache snapshots;
    std::vector<KernelSweepResult> results =
        runner.runKernels(jobs, cache, &snapshots);

    std::size_t validated = 0;
    for (const KernelSweepResult &r : results)
        if (r.validated)
            ++validated;
    SnapshotCache::Counters c = snapshots.counters();
    std::printf("\n== Snapshot warm-start statistics (validation "
                "grid x2) ==\n");
    std::printf("  checkpoints: %llu miss(es) -> stored, %llu "
                "hit(s) -> restored\n",
                static_cast<unsigned long long>(c.misses),
                static_cast<unsigned long long>(c.hits));
    std::printf("  prepare time saved by warm starts: %.1f ms\n",
                static_cast<double>(c.savedMicros) / 1000.0);
    std::printf("  program cache: %llu compile(s), %llu hit(s); "
                "%zu/%zu jobs bit-exact\n",
                static_cast<unsigned long long>(cache.misses()),
                static_cast<unsigned long long>(cache.hits()),
                validated, results.size());
}

/** One (kernel, fabric) cell of the placement A/B. */
struct MappedCell
{
    std::string kernel;
    std::string fabric;
    bool compiled = false;
    std::uint64_t snakeCycles = 0;
    std::uint64_t costCycles = 0;
    bool snakeValidated = false;
    bool costValidated = false;
    double snakeMeanHops = 0.0;
    double costMeanHops = 0.0;
    std::uint64_t snakeMaxLinkLoad = 0;
    std::uint64_t costMaxLinkLoad = 0;
};

/**
 * The mapped-cycles ablation: every kernel on both evaluation
 * fabrics, compiled with the legacy snake backend and with the
 * cost-driven backend, run to completion and cross-validated.  The
 * aggregate over NW+LDPC+GEMM (the kernels with the largest
 * model-vs-machine gap) is the geomean speedup across the
 * (kernel, fabric) points — the literature's standard aggregate
 * for per-kernel cycle ratios of very different magnitudes — next
 * to the raw per-fabric cycle sums.
 */
std::vector<MappedCell>
mappedCyclesAb(const Options &opts, const SweepRunner &runner)
{
    const MachineConfig fabrics[] = {primaryFabric(),
                                     slowMeshFabric()};
    const char *fabric_names[] = {"10x10", "10x10s"};

    std::vector<KernelSweepJob> jobs;
    std::vector<MappedCell> cells;
    for (const Workload *w : allWorkloads()) {
        if (!selected(opts, w->name()))
            continue;
        for (int f = 0; f < 2; ++f) {
            MappedCell cell;
            cell.kernel = w->name();
            cell.fabric = fabric_names[f];
            cells.push_back(cell);
            for (PlacerKind placer :
                 {PlacerKind::Snake, PlacerKind::Cost}) {
                CompilerOptions copts;
                copts.placer = placer;
                copts.unrollFactor = opts.unrollFactor;
                jobs.push_back(
                    KernelSweepJob{w, fabrics[f], 0, copts});
            }
        }
    }

    ProgramCache cache;
    std::vector<KernelSweepResult> results =
        runner.runKernels(jobs, cache);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const KernelSweepResult &snake = results[2 * i];
        const KernelSweepResult &cost = results[2 * i + 1];
        MappedCell &cell = cells[i];
        cell.compiled = snake.compiled && cost.compiled;
        if (!cell.compiled)
            continue;
        cell.snakeCycles = snake.run.cycles;
        cell.costCycles = cost.run.cycles;
        cell.snakeValidated = snake.validated;
        cell.costValidated = cost.validated;
        cell.snakeMeanHops = snake.congestion.meanHops;
        cell.costMeanHops = cost.congestion.meanHops;
        cell.snakeMaxLinkLoad = snake.congestion.maxLinkLoad;
        cell.costMaxLinkLoad = cost.congestion.maxLinkLoad;
    }
    return cells;
}

/**
 * Shared machine-readable report writer.  Every JSON artifact
 * paper_eval emits (compile coverage, mapped cycles, unroll
 * ablation, fault resilience) opens through openReport so they all
 * lead with the same "schema_version" field, and closes through
 * closeReport for the uniform confirmation line.  The serving
 * ladder's BENCH_serving.json (bench/bench_serving.cc) follows the
 * same leading-field convention from its own writer.  Bump the
 * version when an existing field changes meaning — added fields are
 * not a version bump.
 */
constexpr int kReportSchemaVersion = 2;

bool
openReport(std::ofstream &out, const std::string &path,
           const char *kind)
{
    out.open(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s report '%s'\n", kind,
                     path.c_str());
        return false;
    }
    out << "{\n  \"schema_version\": " << kReportSchemaVersion
        << ",\n";
    return true;
}

void
closeReport(std::ofstream &out, const std::string &path,
            const char *kind)
{
    out << "}\n";
    std::printf("wrote %s report: %s\n", kind, path.c_str());
}

void
writeMappedReport(const std::string &path,
                  const std::vector<MappedCell> &cells)
{
    const std::set<std::string> aggregate_kernels = {"NW", "LDPC",
                                                     "GEMM"};
    double log_speedup_sum = 0.0;
    int points = 0;
    std::uint64_t snake_total = 0, cost_total = 0;
    for (const MappedCell &c : cells) {
        if (!c.compiled || !aggregate_kernels.count(c.kernel))
            continue;
        snake_total += c.snakeCycles;
        cost_total += c.costCycles;
        log_speedup_sum +=
            std::log(static_cast<double>(c.snakeCycles) /
                     static_cast<double>(c.costCycles));
        ++points;
    }
    double geomean =
        points > 0 ? std::exp(log_speedup_sum / points) : 1.0;

    std::ofstream out;
    if (!openReport(out, path, "mapped-cycles"))
        return;
    out << "  \"baseline\": \"snake (legacy backend: "
           "boustrophedon placement + legacy drain bounds)\",\n"
           "  \"cells\": [\n";
    bool first = true;
    for (const MappedCell &c : cells) {
        if (!c.compiled)
            continue;
        if (!first)
            out << ",\n";
        first = false;
        out << "    {\"kernel\": \"" << c.kernel
            << "\", \"fabric\": \"" << c.fabric
            << "\", \"snake_cycles\": " << c.snakeCycles
            << ", \"cost_cycles\": " << c.costCycles
            << ", \"speedup\": "
            << static_cast<double>(c.snakeCycles) /
                   static_cast<double>(c.costCycles)
            << ", \"snake_mean_hops\": " << c.snakeMeanHops
            << ", \"cost_mean_hops\": " << c.costMeanHops
            << ", \"snake_max_link_load\": " << c.snakeMaxLinkLoad
            << ", \"cost_max_link_load\": " << c.costMaxLinkLoad
            << ", \"validated\": "
            << (c.snakeValidated && c.costValidated ? "true"
                                                    : "false")
            << "}";
    }
    out << "\n";
    out << "  ],\n  \"aggregate\": {\n"
        << "    \"kernels\": [\"NW\", \"LDPC\", \"GEMM\"],\n"
        << "    \"metric\": \"geomean speedup over the (kernel, "
           "fabric) points\",\n"
        << "    \"points\": " << points << ",\n"
        << "    \"snake_cycles_total\": " << snake_total << ",\n"
        << "    \"cost_cycles_total\": " << cost_total << ",\n"
        << "    \"sum_reduction_pct\": "
        << (snake_total > 0
                ? 100.0 * (1.0 - static_cast<double>(cost_total) /
                                     static_cast<double>(
                                         snake_total))
                : 0.0)
        << ",\n"
        << "    \"geomean_speedup\": " << geomean << ",\n"
        << "    \"aggregate_reduction_pct\": "
        << 100.0 * (1.0 - 1.0 / geomean) << "\n  }\n";
    std::printf("\n");
    closeReport(out, path, "mapped-cycles");
    std::printf("placement A/B aggregate (NW+LDPC+GEMM, both "
                "fabrics): geomean speedup %.3fx "
                "(%.1f%% cycle reduction; cycle sums %llu -> "
                "%llu, %.1f%%)\n",
                geomean, 100.0 * (1.0 - 1.0 / geomean),
                static_cast<unsigned long long>(snake_total),
                static_cast<unsigned long long>(cost_total),
                snake_total > 0
                    ? 100.0 * (1.0 -
                               static_cast<double>(cost_total) /
                                   static_cast<double>(
                                       snake_total))
                    : 0.0);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            out += '\\';
        out += ch;
    }
    return out;
}

void
writeReport(const std::string &path,
            const std::vector<KernelCoverage> &coverage)
{
    std::ofstream out;
    if (!openReport(out, path, "compile-coverage"))
        return;
    out << "  \"fabric\": \"10x10\",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < coverage.size(); ++i) {
        const KernelCoverage &c = coverage[i];
        // mapped / scheduled: how tight the schedule-aware model
        // tracks the machine (1.0 = exact; the tentpole bar is
        // "within ~2x").
        double ratio = c.scheduledCycles > 0.0
                           ? static_cast<double>(c.cycles) /
                                 c.scheduledCycles
                           : 0.0;
        out << "    {\"kernel\": \"" << c.kernel
            << "\", \"compiled\": "
            << (c.compiled ? "true" : "false")
            << ", \"failed_pass\": \""
            << jsonEscape(c.failedPass) << "\", \"reason\": \""
            << jsonEscape(c.reason)
            << "\", \"validated\": "
            << (c.validated ? "true" : "false")
            << ", \"cycles\": " << c.cycles
            << ", \"model_cycles\": "
            << static_cast<std::uint64_t>(c.modelCycles)
            << ", \"scheduled_cycles\": "
            << static_cast<std::uint64_t>(c.scheduledCycles)
            << ", \"mapped_to_scheduled_ratio\": " << ratio
            << ", \"compile_us\": " << c.compileMicros << "}"
            << (i + 1 < coverage.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    std::printf("\n");
    closeReport(out, path, "compile-coverage");
}

/** Minimal field scan over one JSON object body. */
std::string
extractString(const std::string &obj, const std::string &key)
{
    std::size_t at = obj.find("\"" + key + "\"");
    if (at == std::string::npos)
        return {};
    at = obj.find(':', at);
    at = obj.find('"', at);
    if (at == std::string::npos)
        return {};
    std::size_t end = obj.find('"', at + 1);
    return obj.substr(at + 1, end - at - 1);
}

bool
extractBool(const std::string &obj, const std::string &key)
{
    std::size_t at = obj.find("\"" + key + "\"");
    if (at == std::string::npos)
        return false;
    return obj.find("true", at) <
           std::min(obj.find(',', at), obj.find('}', at));
}

/** Numeric field scan; -1 when the key is absent. */
std::int64_t
extractNumber(const std::string &obj, const std::string &key)
{
    std::size_t at = obj.find("\"" + key + "\"");
    if (at == std::string::npos)
        return -1;
    at = obj.find(':', at);
    if (at == std::string::npos)
        return -1;
    return std::atoll(obj.c_str() + at + 1);
}

/** Floating-point field scan; -1.0 when the key is absent. */
double
extractDouble(const std::string &obj, const std::string &key)
{
    std::size_t at = obj.find("\"" + key + "\"");
    if (at == std::string::npos)
        return -1.0;
    at = obj.find(':', at);
    if (at == std::string::npos)
        return -1.0;
    return std::atof(obj.c_str() + at + 1);
}

/** Diff (kernel, compiled, failed_pass) against the expectation
 *  file; returns false (and prints every difference) on mismatch. */
bool
checkCoverage(const std::string &path,
              const std::vector<KernelCoverage> &coverage)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr,
                     "cannot read expected coverage '%s'\n",
                     path.c_str());
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string all = buf.str();

    bool ok = true;
    int checked = 0;
    for (const KernelCoverage &c : coverage) {
        // Find this kernel's object.
        std::size_t at =
            all.find("\"kernel\": \"" + c.kernel + "\"");
        if (at == std::string::npos) {
            std::fprintf(stderr,
                         "coverage check: kernel %s missing from "
                         "%s\n",
                         c.kernel.c_str(), path.c_str());
            ok = false;
            continue;
        }
        std::size_t end = all.find('}', at);
        std::string obj = all.substr(at, end - at + 1);
        bool want_compiled = extractBool(obj, "compiled");
        std::string want_pass = extractString(obj, "failed_pass");
        if (want_compiled != c.compiled) {
            std::fprintf(stderr,
                         "coverage check: %s %s, expected to %s\n",
                         c.kernel.c_str(),
                         c.compiled ? "compiles" : "is rejected",
                         want_compiled ? "compile"
                                       : "be rejected");
            ok = false;
        } else if (!c.compiled && want_pass != c.failedPass) {
            std::fprintf(stderr,
                         "coverage check: %s rejected by '%s', "
                         "expected '%s'\n",
                         c.kernel.c_str(), c.failedPass.c_str(),
                         want_pass.c_str());
            ok = false;
        }
        if (c.compiled && !c.validated) {
            std::fprintf(stderr,
                         "coverage check: %s compiled but was not "
                         "bit-exact\n",
                         c.kernel.c_str());
            ok = false;
        }
        // Cycle regressions fail CI too, not just status flips: a
        // compiled kernel's mapped cycles must stay within a
        // tolerance band of the expectation (the band absorbs
        // incidental drift from unrelated changes; a placement or
        // timing regression blows through it).  The run is fully
        // deterministic, so the band can be tight.
        constexpr double kCycleTolerance = 0.05;
        std::int64_t want_cycles = extractNumber(obj, "cycles");
        if (c.compiled && want_compiled && want_cycles > 0) {
            double rel =
                std::fabs(static_cast<double>(c.cycles) -
                          static_cast<double>(want_cycles)) /
                static_cast<double>(want_cycles);
            if (rel > kCycleTolerance) {
                std::fprintf(
                    stderr,
                    "coverage check: %s runs in %llu cycles, "
                    "expected %lld (+/-%.0f%%)\n",
                    c.kernel.c_str(),
                    static_cast<unsigned long long>(c.cycles),
                    static_cast<long long>(want_cycles),
                    100.0 * kCycleTolerance);
                ok = false;
            }
        }
        // The mapped-to-scheduled ratio is the schedule model's
        // calibration (1.0 = the route pass predicts the machine
        // exactly).  Model drift fails CI independently of raw
        // cycles: a change that slows the machine *and* mis-models
        // it equally would pass the cycle band yet silently
        // invalidate every scheduled-cycle prediction downstream
        // (sweep modelEstimate, unroll ablation).  The band is
        // 0.10 absolute or 10% relative, whichever is larger.
        double want_ratio =
            extractDouble(obj, "mapped_to_scheduled_ratio");
        if (c.compiled && want_compiled && want_ratio > 0.0 &&
            c.scheduledCycles > 0.0) {
            double ratio = static_cast<double>(c.cycles) /
                           c.scheduledCycles;
            double drift = std::fabs(ratio - want_ratio);
            if (drift > 0.10 && drift > 0.10 * want_ratio) {
                std::fprintf(
                    stderr,
                    "coverage check: %s mapped/scheduled ratio "
                    "%.3f drifted from expected %.3f (band: 0.10 "
                    "absolute or 10%% relative)\n",
                    c.kernel.c_str(), ratio, want_ratio);
                ok = false;
            }
        }
        ++checked;
    }

    // Reverse direction: every kernel in the expectation must be
    // present in the current run, or dropping a registered
    // workload would pass unnoticed.
    std::size_t at = 0;
    while ((at = all.find("\"kernel\": \"", at)) !=
           std::string::npos) {
        at += 11;
        std::size_t end = all.find('"', at);
        std::string name = all.substr(at, end - at);
        bool present = false;
        for (const KernelCoverage &c : coverage)
            present = present || c.kernel == name;
        if (!present) {
            std::fprintf(stderr,
                         "coverage check: expected kernel %s is "
                         "missing from this run\n",
                         name.c_str());
            ok = false;
        }
    }
    std::printf("\ncoverage check vs %s: %d kernel(s) %s\n",
                path.c_str(), checked, ok ? "OK" : "CHANGED");
    return ok;
}

// ------------------------------------------------------------------
// Unroll-factor ablation (--unroll-ablation)
// ------------------------------------------------------------------

/** The replication factor the backend actually committed to (the
 *  lower pass's capacity refinement may shrink the unroll pass's
 *  candidate), parsed from the pinned "replicated xN" note; 1 when
 *  no phase replicated. */
int
chosenUnrollFactor(const CompileReport &report)
{
    int factor = 1;
    for (const CompilerPassNote &n : report.notes) {
        std::size_t at = n.message.find("replicated x");
        if (at == std::string::npos)
            continue;
        factor = std::max(
            factor, std::atoi(n.message.c_str() + at + 12));
    }
    return factor;
}

/**
 * The unroll-factor ablation: GEMM and LDPC on the primary fabric
 * at explicit caps 1/2/4/8/16 plus the automatic cap, each run to
 * completion on the cycle-accurate machine and cross-validated.
 * The JSON (BENCH_unroll_ablation.json) records the requested cap,
 * the factor the backend actually chose, mapped cycles, the
 * schedule-aware estimate, and bit-exactness — the evidence that
 * replication is where the mapped-cycle reduction comes from and
 * that every factor stays bit-exact.
 */
int
runUnrollAblation(const Options &opts, const SweepRunner &runner)
{
    const MachineConfig fabric = primaryFabric();
    // 0 = automatic comes last so the table reads cap-then-auto.
    const int caps[] = {1, 2, 4, 8, 16, 0};

    struct AblationCell
    {
        std::string kernel;
        int requestedFactor = 0;
        int chosenFactor = 1;
        bool compiled = false;
        bool validated = false;
        std::uint64_t cycles = 0;
        double scheduledCycles = 0.0;
    };

    std::vector<KernelSweepJob> jobs;
    std::vector<AblationCell> cells;
    for (const char *name : {"GEMM", "LDPC"}) {
        const Workload *w = findWorkload(name);
        if (w == nullptr || !selected(opts, w->name()))
            continue;
        for (int cap : caps) {
            CompilerOptions copts;
            copts.placer = opts.placer;
            copts.unrollFactor = cap;
            jobs.push_back(KernelSweepJob{w, fabric, 0, copts});
            AblationCell cell;
            cell.kernel = w->name();
            cell.requestedFactor = cap;
            cells.push_back(std::move(cell));
        }
    }
    if (jobs.empty()) {
        std::fprintf(stderr,
                     "paper_eval: --unroll-ablation needs GEMM "
                     "or LDPC selected\n");
        return 1;
    }

    ProgramCache cache;
    std::vector<KernelSweepResult> results =
        runner.runKernels(jobs, cache);

    std::printf("== Unroll-factor ablation: GEMM+LDPC on the "
                "10x10 fabric (%s placer) ==\n",
                std::string(placerName(opts.placer)).c_str());
    std::printf("  %-6s %4s %6s %10s %10s  %s\n", "kernel", "cap",
                "chosen", "cycles", "scheduled", "result");
    bool failed = false;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const KernelSweepResult &r = results[i];
        AblationCell &cell = cells[i];
        cell.compiled = r.compiled;
        cell.validated = r.validated;
        if (r.compiled)
            cell.cycles = r.run.cycles;
        // The sweep result carries no compile report; re-derive
        // the chosen factor (and the scheduled estimate) with a
        // fresh compile under the same options.
        Compiler compiler(fabric, jobs[i].options);
        CompileResult cr = compiler.compile(*jobs[i].workload);
        cell.chosenFactor = chosenUnrollFactor(cr.report);
        cell.scheduledCycles = cr.report.scheduledCycleEstimate;
        if (!cell.compiled || !cell.validated)
            failed = true;
        std::printf(
            "  %-6s %4s %6d %10llu %10.0f  %s\n",
            cell.kernel.c_str(),
            cell.requestedFactor == 0
                ? "auto"
                : std::to_string(cell.requestedFactor).c_str(),
            cell.chosenFactor,
            static_cast<unsigned long long>(cell.cycles),
            cell.scheduledCycles,
            !cell.compiled
                ? ("rejected: " + r.diagnostic).c_str()
                : (cell.validated ? "bit-exact vs golden"
                                  : r.validationError.c_str()));
    }

    std::ofstream out;
    if (!openReport(out, opts.unrollAblationPath,
                    "unroll-ablation"))
        return 1;
    out << "  \"fabric\": \"10x10\",\n  \"placer\": \""
        << placerName(opts.placer) << "\",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const AblationCell &cell = cells[i];
        out << "    {\"kernel\": \"" << cell.kernel
            << "\", \"requested_factor\": " << cell.requestedFactor
            << ", \"auto\": "
            << (cell.requestedFactor == 0 ? "true" : "false")
            << ", \"chosen_factor\": " << cell.chosenFactor
            << ", \"compiled\": "
            << (cell.compiled ? "true" : "false")
            << ", \"validated\": "
            << (cell.validated ? "true" : "false")
            << ", \"cycles\": " << cell.cycles
            << ", \"scheduled_cycles\": "
            << static_cast<std::uint64_t>(cell.scheduledCycles)
            << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    closeReport(out, opts.unrollAblationPath, "unroll-ablation");
    if (failed)
        std::fprintf(stderr,
                     "paper_eval: unroll ablation FAILED — a "
                     "(kernel, factor) cell did not stay "
                     "bit-exact\n");
    return failed ? 1 : 0;
}

// ------------------------------------------------------------------
// Fault-resilience sweep (--faults)
// ------------------------------------------------------------------

/** One (kernel, fault-grid cell) outcome of the resilience sweep. */
struct ResilienceCell
{
    std::string kernel;
    int deadPes = 0;
    int deadLinks = 0;
    bool compiled = false;
    std::string diagnostic;
    bool validated = false;
    std::string runError;    ///< structured error name, or "".
    std::string errorDetail;
    int retries = 0;
    bool recompiled = false;
    std::string jobError;
    std::uint64_t cycles = 0;
    /** Validated cycles / the kernel's zero-fault validated cycles;
     *  0 when either side is unavailable. */
    double overhead = 0.0;
};

/**
 * Sweep seeded fault plans over the selected kernels on the primary
 * 10x10 fabric.  Every cell compiles fault-obliviously first, runs
 * on the faulted machine, and on a structured run error re-places/
 * re-routes against the discovered fault set and reruns (the
 * KernelSweepJob discovery mode).  The acceptance bar: every cell
 * must either stay bit-exact vs the goldens, reject with a
 * pass-attributed "unmappable under faults" diagnostic, or end in
 * bounded time with a structured RunResult error — silent corruption
 * or a thrown job fails the sweep (nonzero exit).
 */
int
runResilienceSweep(const Options &opts, const SweepRunner &runner)
{
    const MachineConfig base = primaryFabric();
    CompilerOptions copts;
    copts.placer = opts.placer;
    copts.unrollFactor = opts.unrollFactor;

    // ISSUE grid: dead-PE counts spanning 0..8, dead-link counts
    // spanning 0..4 — or the single --fault-grid cell (always with
    // the zero-fault baseline so overhead is measurable).
    std::vector<std::pair<int, int>> cells;
    cells.emplace_back(0, 0);
    if (opts.faultDeadPes >= 0) {
        if (opts.faultDeadPes != 0 || opts.faultDeadLinks != 0)
            cells.emplace_back(opts.faultDeadPes,
                               opts.faultDeadLinks);
    } else {
        for (int d : {0, 1, 2, 4, 8})
            for (int l : {0, 1, 2, 4})
                if (d != 0 || l != 0)
                    cells.emplace_back(d, l);
    }

    std::vector<KernelSweepJob> jobs;
    std::vector<ResilienceCell> table;
    for (const Workload *w : allWorkloads()) {
        if (!selected(opts, w->name()))
            continue;
        for (const auto &[dead_pes, dead_links] : cells) {
            MachineConfig config = base;
            config.faults = FaultPlan::seeded(
                config.rows, config.cols, dead_pes, dead_links,
                opts.faultSeed);
            KernelSweepJob job{w, config, 0, copts};
            job.discoverFaults = true;
            job.maxRetries = 1;
            jobs.push_back(std::move(job));
            ResilienceCell cell;
            cell.kernel = w->name();
            cell.deadPes = dead_pes;
            cell.deadLinks = dead_links;
            table.push_back(std::move(cell));
        }
    }

    ProgramCache cache;
    std::vector<KernelSweepResult> results =
        runner.runKernels(jobs, cache);

    // Zero-fault baselines (cycles; cell (0,0) leads each kernel's
    // block) for the overhead ratios, and the set of kernels the
    // clean compiler accepts — only those count toward survival.
    std::size_t per_kernel = cells.size();
    for (std::size_t i = 0; i < results.size(); ++i) {
        const KernelSweepResult &r = results[i];
        ResilienceCell &cell = table[i];
        cell.compiled = r.compiled;
        cell.diagnostic = r.diagnostic;
        cell.validated = r.validated;
        cell.retries = r.retries;
        cell.recompiled = r.recompiled;
        cell.jobError = r.jobError;
        if (r.compiled) {
            cell.cycles = r.run.cycles;
            if (r.run.error != RunError::None) {
                cell.runError = runErrorName(r.run.error);
                cell.errorDetail = r.run.errorDetail;
            }
        }
        const ResilienceCell &zero =
            table[i - (i % per_kernel)];
        if (cell.validated && zero.validated && zero.cycles > 0)
            cell.overhead = static_cast<double>(cell.cycles) /
                            static_cast<double>(zero.cycles);
    }

    std::printf("== Fault resilience: seeded fault sweep on the "
                "10x10 fabric (seed %llu, %s placer) ==\n",
                static_cast<unsigned long long>(opts.faultSeed),
                std::string(placerName(opts.placer)).c_str());
    std::printf("  %-6s %4s %5s %10s %7s %8s  %s\n", "kernel",
                "dead", "links", "cycles", "retry", "overhead",
                "result");
    bool failed = false;
    int survivable = 0, survived = 0, recompiles = 0,
        recoveries = 0;
    double overhead_log_sum = 0.0;
    int overhead_count = 0;
    for (std::size_t i = 0; i < table.size(); ++i) {
        const ResilienceCell &cell = table[i];
        const ResilienceCell &zero = table[i - (i % per_kernel)];
        const char *verdict = nullptr;
        if (!cell.jobError.empty()) {
            verdict = "JOB THREW";
            failed = true;
        } else if (!cell.compiled) {
            // A clean rejection is acceptable under faults only if
            // it is the pass-attributed unmappable diagnostic (or
            // the kernel is rejected even fault-free, e.g. MS/FFT).
            verdict = "rejected";
            if (zero.compiled &&
                cell.diagnostic.find("unmappable under faults") ==
                    std::string::npos)
                failed = true;
        } else if (cell.validated) {
            verdict = "bit-exact";
        } else if (!cell.runError.empty()) {
            verdict = "structured error";
        } else {
            verdict = "SILENT CORRUPTION";
            failed = true;
        }
        if (zero.compiled && zero.validated) {
            ++survivable;
            if (cell.validated)
                ++survived;
        }
        if (cell.recompiled) {
            ++recompiles;
            if (cell.validated)
                ++recoveries;
        }
        if (cell.overhead > 0.0 &&
            (cell.deadPes != 0 || cell.deadLinks != 0)) {
            overhead_log_sum += std::log(cell.overhead);
            ++overhead_count;
        }
        std::printf(
            "  %-6s %4d %5d %10llu %7d %8s  %s%s%s\n",
            cell.kernel.c_str(), cell.deadPes, cell.deadLinks,
            static_cast<unsigned long long>(cell.cycles),
            cell.retries,
            cell.overhead > 0.0
                ? (std::to_string(cell.overhead).substr(0, 5) + "x")
                      .c_str()
                : "-",
            verdict,
            (!cell.jobError.empty() || !cell.runError.empty() ||
             (!cell.compiled && !cell.diagnostic.empty()))
                ? ": "
                : "",
            !cell.jobError.empty()
                ? cell.jobError.c_str()
                : (!cell.runError.empty()
                       ? cell.errorDetail.c_str()
                       : (!cell.compiled ? cell.diagnostic.c_str()
                                         : "")));
    }

    KernelSweepStats stats = summarizeKernelSweep(results);
    double survival =
        survivable > 0 ? 100.0 * survived / survivable : 0.0;
    double recompile_rate =
        recompiles > 0 ? 100.0 * recoveries / recompiles : 0.0;
    double overhead_geomean =
        overhead_count > 0
            ? std::exp(overhead_log_sum / overhead_count)
            : 1.0;
    std::printf("\n  survival %d/%d (%.1f%%), %d recompile(s) "
                "(%d recovered, %.1f%%), cycle overhead geomean "
                "%.3fx, %d run error(s), %d rejected, %d job "
                "error(s)\n",
                survived, survivable, survival, recompiles,
                recoveries, recompile_rate, overhead_geomean,
                stats.runErrors, stats.rejected, stats.jobErrors);
    std::printf("  program cache: %llu compile(s), %llu hit(s) "
                "across %zu jobs\n",
                static_cast<unsigned long long>(cache.misses()),
                static_cast<unsigned long long>(cache.hits()),
                jobs.size());

    if (!opts.resilienceReportPath.empty()) {
        std::ofstream out;
        if (!openReport(out, opts.resilienceReportPath,
                        "resilience"))
            return 1;
        out << "  \"fabric\": \"10x10\",\n  \"seed\": "
            << opts.faultSeed << ",\n  \"survival_rate\": "
            << survival / 100.0
            << ",\n  \"recompile_success_rate\": "
            << recompile_rate / 100.0
            << ",\n  \"cycle_overhead_geomean\": "
            << overhead_geomean
            << ",\n  \"retried\": " << stats.retried
            << ",\n  \"recovered_by_recompile\": "
            << stats.recoveredByRecompile
            << ",\n  \"cells\": [\n";
        for (std::size_t i = 0; i < table.size(); ++i) {
            const ResilienceCell &cell = table[i];
            out << "    {\"kernel\": \"" << cell.kernel
                << "\", \"dead_pes\": " << cell.deadPes
                << ", \"dead_links\": " << cell.deadLinks
                << ", \"compiled\": "
                << (cell.compiled ? "true" : "false")
                << ", \"validated\": "
                << (cell.validated ? "true" : "false")
                << ", \"cycles\": " << cell.cycles
                << ", \"retries\": " << cell.retries
                << ", \"recompiled\": "
                << (cell.recompiled ? "true" : "false")
                << ", \"overhead\": " << cell.overhead
                << ", \"run_error\": \""
                << jsonEscape(cell.runError)
                << "\", \"diagnostic\": \""
                << jsonEscape(!cell.jobError.empty()
                                  ? cell.jobError
                                  : (!cell.errorDetail.empty()
                                         ? cell.errorDetail
                                         : cell.diagnostic))
                << "\"}" << (i + 1 < table.size() ? "," : "")
                << "\n";
        }
        out << "  ]\n";
        std::printf("  ");
        closeReport(out, opts.resilienceReportPath, "resilience");
    }

    if (failed)
        std::fprintf(stderr,
                     "paper_eval: fault sweep FAILED — a cell "
                     "neither validated, rejected cleanly, nor "
                     "errored with a structured RunResult\n");
    return failed ? 1 : 0;
}

/**
 * Serving smoke gate (--serve-smoke): a small deterministic
 * multi-tenant load through the ServeCore with spatial co-tenancy
 * on — one primary fabric carved into four regions, snapshots and
 * golden cross-validation enabled.  Fails (non-zero exit) if any
 * response is unserved, any served response diverges from its solo
 * goldens, no warm start happened, or the latency tail blows out.
 */
int
runServeSmoke()
{
    serve::ServeOptions options;
    options.fabric = primaryFabric();
    options.fabrics = 1;
    options.regionsPerFabric = 4;
    options.queueCapacity = 16;
    serve::ServeCore core(options);

    // Three tenants, two kernels, enough repetition that the
    // second half of the load is all snapshot warm starts.
    const char *tenants[] = {"alpha", "beta", "gamma"};
    const char *kernels[] = {"CRC", "SI"};
    std::vector<std::future<serve::ServeResponse>> futures;
    for (int i = 0; i < 24; ++i) {
        serve::ServeRequest request;
        request.tenant = tenants[i % 3];
        request.workload = kernels[i % 2];
        request.options.unrollFactor = 1;
        futures.push_back(core.submit(request));
    }
    core.drain();

    int served = 0, warm = 0, failed = 0;
    std::uint64_t worst_micros = 0;
    for (auto &future : futures) {
        const serve::ServeResponse response = future.get();
        if (!response.served || !response.validation.empty()) {
            ++failed;
            std::fprintf(stderr, "serve-smoke: %s\n",
                         response.served
                             ? response.validation.c_str()
                             : response.error.c_str());
            continue;
        }
        ++served;
        warm += response.warmStart ? 1 : 0;
        worst_micros =
            std::max(worst_micros, response.queueMicros +
                                       response.serviceMicros);
    }
    std::printf("%s", core.renderStats().c_str());
    std::printf("serve-smoke: %d served, %d warm starts, worst "
                "latency %.1fms\n",
                served, warm,
                static_cast<double>(worst_micros) / 1000.0);
    bool pass = failed == 0 && served == 24 && warm > 0;
    // Generous wall bound: a stuck queue or deadlocked lane shows
    // up as minutes, not seconds.
    if (worst_micros > 60'000'000ull) {
        std::fprintf(stderr, "serve-smoke: latency over 60s\n");
        pass = false;
    }
    std::printf("serve-smoke %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts))
        return 1;
    if (opts.list) {
        for (const Workload *w : allWorkloads())
            std::printf("%-6s %s (%s)\n", w->name().c_str(),
                        w->fullName().c_str(),
                        w->sizeDesc().c_str());
        return 0;
    }
    if (opts.serveSmoke)
        return runServeSmoke();
    if (opts.faults) {
        SweepRunner fault_runner(opts.jobs);
        return runResilienceSweep(opts, fault_runner);
    }
    if (!opts.unrollAblationPath.empty()) {
        SweepRunner ab_runner(opts.jobs);
        return runUnrollAblation(opts, ab_runner);
    }

    ModelParams params;
    Features base_f;
    base_f.controlNetwork = false;
    base_f.agileAssignment = false;
    Features net_f = base_f;
    net_f.controlNetwork = true;
    Features full_f; // everything on.

    auto vn = makeVonNeumannPe(params);
    auto df = makeDataflowPe(params);
    auto mar_base = makeMarionette(params, base_f);
    auto mar_net = makeMarionette(params, net_f);
    auto mar = makeMarionette(params, full_f);
    auto sb = makeSoftbrain(params);
    auto tia = makeTia(params);
    auto revel = makeRevel(params);
    auto riptide = makeRiptide(params);

    std::vector<WorkloadProfile> profiles;
    for (const WorkloadProfile &p : allProfiles())
        if (selected(opts, p.name))
            profiles.push_back(p);
    std::vector<WorkloadProfile> intensive;
    for (const WorkloadProfile &p : intensiveProfiles())
        if (selected(opts, p.name))
            intensive.push_back(p);
    std::vector<const ArchModel *> models{
        vn.get(),  df.get(),    mar_base.get(),
        mar_net.get(), mar.get(), sb.get(),
        tia.get(), revel.get(), riptide.get()};
    SweepRunner runner(opts.jobs);
    CycleTable table = runSuiteParallel(models, profiles, runner);

    std::printf("== Table 1: control flow forms ==\n");
    for (const WorkloadProfile &p : profiles)
        std::printf("  %s\n", toString(p.controlFlow).c_str());

    std::printf("\n== Table 3: capability matrix ==\n%s",
                renderCapabilityMatrix().c_str());

    MachineConfig config;
    std::printf("\n== Table 4: area & power (28nm) ==\n%s",
                marionetteAreaBreakdown(config).toString().c_str());

    std::printf("\n== Table 6: network area comparison ==\n%s",
                toString(networkAreaComparison(config)).c_str());

    std::printf("\n== Fig 11: PE execution models "
                "(normalized to von Neumann PE) ==\n%s",
                renderSpeedupTable(table, vn->name(),
                                   {vn->name(), df->name(),
                                    mar_base->name()},
                                   intensive)
                    .c_str());

    std::printf("\n== Fig 12: + control network ==\n%s",
                renderSpeedupTable(table, mar_base->name(),
                                   {mar_net->name()}, intensive)
                    .c_str());

    std::printf("\n== Fig 13: control network timing ==\n%s",
                toString(delaySweep()).c_str());

    std::printf("\n== Fig 14: + Agile PE Assignment ==\n%s",
                renderSpeedupTable(table, mar_net->name(),
                                   {mar->name()}, intensive)
                    .c_str());

    std::printf("\n== Fig 15: Agile utilization effects ==\n");
    for (const WorkloadProfile &p : intensive) {
        const ModelResult &s = table.at(mar_net->name()).at(p.name);
        const ModelResult &a = table.at(mar->name()).at(p.name);
        if (s.outerBbPeUtil <= 0)
            continue;
        std::printf("  %-6s outerBB %5.1f%% -> %5.1f%% (%5.1fx)   "
                    "pipeline %5.1f%% -> %5.1f%% (%4.2fx)\n",
                    p.name.c_str(), 100 * s.outerBbPeUtil,
                    100 * a.outerBbPeUtil,
                    a.outerBbPeUtil / s.outerBbPeUtil,
                    100 * s.pipelineUtil, 100 * a.pipelineUtil,
                    a.pipelineUtil / s.pipelineUtil);
    }

    std::printf("\n== Fig 16: network vs Agile speedup split ==\n");
    for (const WorkloadProfile &p : intensive) {
        double net_gain =
            table.at(mar_base->name()).at(p.name).cycles /
            table.at(mar_net->name()).at(p.name).cycles;
        double agile_gain =
            table.at(mar_net->name()).at(p.name).cycles /
            table.at(mar->name()).at(p.name).cycles;
        std::printf("  %-6s network %4.0f%%   agile %4.0f%%\n",
                    p.name.c_str(), 100 * (net_gain - 1),
                    100 * (agile_gain - 1));
    }

    std::printf("\n== Fig 17: vs state of the art "
                "(normalized to Softbrain) ==\n%s",
                renderSpeedupTable(table, sb->name(),
                                   {sb->name(), tia->name(),
                                    revel->name(), riptide->name(),
                                    mar->name()},
                                   profiles)
                    .c_str());

    if (!intensive.empty()) {
        std::printf("\nMarionette geomean speedups (intensive): "
                    "Softbrain %.2fx, TIA %.2fx, REVEL %.2fx, "
                    "RipTide %.2fx\n",
                    speedups(table, sb->name(), mar->name(),
                             intensive).back(),
                    speedups(table, tia->name(), mar->name(),
                             intensive).back(),
                    speedups(table, revel->name(), mar->name(),
                             intensive).back(),
                    speedups(table, riptide->name(), mar->name(),
                             intensive).back());
    }

    // Full-LDPC composite (Fig. 17 note): intensive LDPC decode
    // plus a non-intensive front end (Gray-processing-like).
    if (selected(opts, "LDPC") && selected(opts, "GP")) {
        auto composite = [&](const char *arch) {
            return table.at(arch).at("LDPC").cycles +
                   table.at(arch).at("GP").cycles;
        };
        std::printf("Full LDPC application: Softbrain %.2fx, TIA "
                    "%.2fx, REVEL %.2fx, RipTide %.2fx\n",
                    composite(sb->name().c_str()) /
                        composite(mar->name().c_str()),
                    composite(tia->name().c_str()) /
                        composite(mar->name().c_str()),
                    composite(revel->name().c_str()) /
                        composite(mar->name().c_str()),
                    composite(riptide->name().c_str()) /
                        composite(mar->name().c_str()));
    }

    std::vector<KernelCoverage> coverage =
        machineValidation(opts, runner);
    if (!opts.reportPath.empty())
        writeReport(opts.reportPath, coverage);
    if (!opts.mappedReportPath.empty())
        writeMappedReport(opts.mappedReportPath,
                          mappedCyclesAb(opts, runner));
    if (opts.fastForward == 1 && !fastForwardSmoke(opts, runner))
        return 1;
    if (opts.snapshotStats)
        snapshotStatsRun(opts, runner);
    if (!opts.checkCoveragePath.empty() &&
        !checkCoverage(opts.checkCoveragePath, coverage))
        return 1;
    return 0;
}
