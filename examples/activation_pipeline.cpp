/**
 * @file
 * Nonlinear-fitting PEs in action (paper Table 4: 4 of the 16 PEs
 * carry nonlinear-fitting units; the Sigmoid benchmark exercises
 * them).
 *
 * A neural-network-flavored activation pipeline:
 *
 *     out[i] = sigmoid( w * x[i] + b )        // Q16.16, w integer
 *
 * Compiled through the unified pass pipeline: the emit pass must
 * place the SigmoidFix operator on one of the capable PEs (the
 * top-id PEs of the array) while the MAC arithmetic stays on
 * ordinary PEs — loading a nonlinear opcode on an ordinary PE is
 * rejected by the machine.
 */

#include <cstdio>
#include <vector>

#include "core/marionette.h"

using namespace marionette;

namespace
{

constexpr int kN = 512;
constexpr Word kBaseIn = 0, kBaseOut = 1024;
constexpr Word kWeight = 3;        // integer weight: 3.0.
constexpr Word kBias = 1 << 15;    // 0.5 in Q16.16.

std::vector<Word>
inputs()
{
    Rng rng(21);
    std::vector<Word> xs(kN);
    for (Word &v : xs)
        v = static_cast<Word>(
            rng.nextRange(-(5 << 16), 5 << 16));
    return xs;
}

class ActivationWorkload : public Workload
{
  public:
    std::string name() const override { return "ACT"; }
    std::string fullName() const override
    { return "Activation Pipeline"; }
    std::string sizeDesc() const override { return "512"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("activation");
        BlockId loop = b.addLoopHeader("i_loop");
        BlockId body = b.addBlock("body");
        BlockId done = b.addBlock("done");
        {
            Dfg &d = b.dfg(loop);
            dfg_patterns::addCountedLoop(d, 0, 1, "n");
        }
        {
            Dfg &d = b.dfg(body);
            int iv = d.addInput("i");
            NodeId x = d.addNode(Opcode::Load, Operand::input(iv),
                                 Operand::none(), Operand::none(),
                                 "x");
            NodeId wx = d.addNode(Opcode::Mul, Operand::node(x),
                                  Operand::imm(kWeight));
            NodeId pre = d.addNode(Opcode::Add, Operand::node(wx),
                                   Operand::imm(kBias),
                                   Operand::none(), "preact");
            NodeId act = d.addNode(Opcode::SigmoidFix,
                                   Operand::node(pre),
                                   Operand::none(),
                                   Operand::none(), "act");
            d.addNode(Opcode::Store, Operand::input(iv),
                      Operand::node(act), Operand::none(), "out");
            d.addOutput("act", act);
        }
        {
            Dfg &d = b.dfg(done);
            int x = d.addInput("act");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        }
        b.fall(loop, body);
        b.loopBack(body, loop);
        b.loopExit(loop, done);
        return b.finish();
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["i_loop"] = {0, kN, 1};
        spec.inductionPorts["i_loop"] = "i";
        spec.arrayBases["x"] = kBaseIn;
        spec.arrayBases["out"] = kBaseOut;

        std::vector<Word> xs = inputs();
        spec.memoryImage = xs;
        std::vector<Word> out(kN);
        for (int i = 0; i < kN; ++i)
            out[static_cast<std::size_t>(i)] = evalOp(
                Opcode::SigmoidFix,
                xs[static_cast<std::size_t>(i)] * kWeight + kBias);
        spec.observePorts = {"act"};
        spec.expectedOutputs = {out};
        spec.expectedMemory = {{"out", kBaseOut, out}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        std::vector<Word> xs = inputs();
        std::uint64_t sum = 0;
        rec.round(0);
        for (int i = 0; i < kN; ++i) {
            rec.iteration(0);
            rec.block(1);
            sum += static_cast<std::uint64_t>(
                static_cast<UWord>(evalOp(
                    Opcode::SigmoidFix,
                    xs[static_cast<std::size_t>(i)] * kWeight +
                        kBias)));
        }
        rec.block(2);
        return sum;
    }
};

} // namespace

int
main()
{
    MachineConfig config;
    ActivationWorkload kernel;
    CompileResult r = Compiler(config).compile(kernel);
    if (!r.ok()) {
        std::printf("compile failed:\n%s",
                    r.report.toString().c_str());
        return 1;
    }

    // Confirm the placement decision: the sigmoid landed on a
    // nonlinear-capable PE.
    for (const PeProgram &pe : r.kernel->program.pes)
        for (const Instruction &in : pe.instrs)
            if (in.op == Opcode::SigmoidFix)
                std::printf("SigmoidFix placed on PE %d "
                            "(nonlinear region: PE %d..%d)\n",
                            pe.pe,
                            config.numPes() - config.nonlinearPes,
                            config.numPes() - 1);

    MarionetteMachine machine(config);
    r.kernel->prepare(machine);
    RunResult result = machine.run(r.kernel->cycleBudget);
    std::printf("ran %llu cycles (%s), utilization %.1f%%\n",
                static_cast<unsigned long long>(result.cycles),
                result.finished ? "quiesced" : "cycle limit",
                100 * result.peUtilization);

    std::string err = r.kernel->validate(machine, result);
    std::printf("%s%s\n",
                err.empty() ? "PASS: all activations bit-exact"
                            : "FAIL: ",
                err.c_str());
    return err.empty() ? 0 : 1;
}
