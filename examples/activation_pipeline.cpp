/**
 * @file
 * Nonlinear-fitting PEs in action (paper Table 4: 4 of the 16 PEs
 * carry nonlinear-fitting units; the Sigmoid benchmark exercises
 * them).
 *
 * A neural-network-flavored activation pipeline:
 *
 *     out[i] = sigmoid( w * x[i] + b )        // Q16.16, w integer
 *
 * The compiler must place the SigmoidFix operator on one of the
 * capable PEs (indices 12..15 on the 4x4 prototype) while the MAC
 * arithmetic stays on ordinary PEs — loading a nonlinear opcode on
 * an ordinary PE is rejected by the machine.
 */

#include <cstdio>
#include <vector>

#include "core/marionette.h"

using namespace marionette;

int
main()
{
    constexpr int n = 512;
    constexpr Word base_in = 0, base_out = 1024;
    constexpr Word weight = 3;        // integer weight: 3.0.
    constexpr Word bias = 1 << 15;    // 0.5 in Q16.16.

    Dfg dfg;
    int iv = dfg.addInput("i");
    NodeId addr_in = dfg.addNode(Opcode::Add, Operand::input(iv),
                                 Operand::imm(base_in));
    NodeId x = dfg.addNode(Opcode::Load, Operand::node(addr_in));
    NodeId wx = dfg.addNode(Opcode::Mul, Operand::node(x),
                            Operand::imm(weight));
    NodeId pre = dfg.addNode(Opcode::Add, Operand::node(wx),
                             Operand::imm(bias), Operand::none(),
                             "preact");
    NodeId act = dfg.addNode(Opcode::SigmoidFix,
                             Operand::node(pre), Operand::none(),
                             Operand::none(), "act");
    NodeId addr_out = dfg.addNode(Opcode::Add, Operand::input(iv),
                                  Operand::imm(base_out));
    dfg.addNode(Opcode::Store, Operand::node(addr_out),
                Operand::node(act));
    dfg.addOutput("act", act);

    MachineConfig config;
    Program prog = mapLoopedDfg("activation", config, dfg,
                                LoopSpec{0, n, 1, 1});

    // Confirm the placement decision: the sigmoid landed on a
    // nonlinear-capable PE.
    for (const PeProgram &pe : prog.pes)
        for (const Instruction &in : pe.instrs)
            if (in.op == Opcode::SigmoidFix)
                std::printf("SigmoidFix placed on PE %d "
                            "(nonlinear region: PE %d..%d)\n",
                            pe.pe,
                            config.numPes() - config.nonlinearPes,
                            config.numPes() - 1);

    MarionetteMachine machine(config);
    machine.load(prog);
    Rng rng(21);
    std::vector<Word> xs(n);
    for (Word &v : xs)
        v = static_cast<Word>(
            rng.nextRange(-(5 << 16), 5 << 16));
    machine.scratchpad().load(base_in, xs);

    RunResult result = machine.run();
    std::printf("ran %llu cycles (%s), utilization %.1f%%\n",
                static_cast<unsigned long long>(result.cycles),
                result.finished ? "quiesced" : "cycle limit",
                100 * result.peUtilization);

    int errors = 0;
    for (int i = 0; i < n; ++i) {
        Word pre =
            xs[static_cast<std::size_t>(i)] * weight + bias;
        Word want = evalOp(Opcode::SigmoidFix, pre);
        Word got = machine.scratchpad().read(base_out + i);
        if (want != got && ++errors <= 4)
            std::printf("  MISMATCH out[%d]: want %d got %d\n", i,
                        want, got);
    }
    std::printf("%s: %d/%d activations correct\n",
                errors == 0 ? "PASS" : "FAIL", n - errors, n);
    return errors == 0 ? 0 : 1;
}
