/**
 * @file
 * Quickstart: the paper's Fig. 1 flow in under a hundred lines.
 *
 * Describes a kernel (out[i] = 3 * a[i] + b[i]) as a one-loop CDFG,
 * compiles it through the unified pass pipeline (analyze /
 * predicate / structure / assign / bind / lower / emit), round-trips
 * the binary configuration stream, runs it on the cycle-accurate
 * Marionette machine, and cross-validates bit-exactly against the
 * golden data the workload spec carries.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/marionette.h"

using namespace marionette;

namespace
{

constexpr int kN = 256;
constexpr Word kBaseA = 0, kBaseB = 512, kBaseOut = 1024;

std::vector<Word>
inputs(Word seed_mix)
{
    Rng rng(42 + seed_mix);
    std::vector<Word> v(kN);
    for (Word &x : v)
        x = static_cast<Word>(rng.nextRange(-100, 100));
    return v;
}

class QuickstartWorkload : public Workload
{
  public:
    std::string name() const override { return "QS"; }
    std::string fullName() const override { return "Quickstart"; }
    std::string sizeDesc() const override { return "256"; }

    Cdfg
    buildCdfg() const override
    {
        CdfgBuilder b("quickstart");
        BlockId loop = b.addLoopHeader("i_loop");
        BlockId body = b.addBlock("body");
        BlockId done = b.addBlock("done");
        {
            Dfg &d = b.dfg(loop);
            dfg_patterns::addCountedLoop(d, 0, 1, "n");
        }
        {
            Dfg &d = b.dfg(body);
            int iv = d.addInput("i");
            NodeId a = d.addNode(Opcode::Load, Operand::input(iv),
                                 Operand::none(), Operand::none(),
                                 "a");
            NodeId bb = d.addNode(Opcode::Load, Operand::input(iv),
                                  Operand::none(), Operand::none(),
                                  "b");
            NodeId scaled = d.addNode(Opcode::Mul, Operand::node(a),
                                      Operand::imm(3));
            NodeId sum = d.addNode(Opcode::Add,
                                   Operand::node(scaled),
                                   Operand::node(bb));
            d.addNode(Opcode::Store, Operand::input(iv),
                      Operand::node(sum), Operand::none(), "out");
            d.addOutput("out", sum);
        }
        {
            Dfg &d = b.dfg(done);
            int x = d.addInput("out");
            NodeId c = d.addNode(Opcode::Copy, Operand::input(x));
            d.addOutput("x", c);
        }
        b.fall(loop, body);
        b.loopBack(body, loop);
        b.loopExit(loop, done);
        return b.finish();
    }

    WorkloadMachineSpec
    machineSpec() const override
    {
        WorkloadMachineSpec spec;
        spec.available = true;
        spec.loopBounds["i_loop"] = {0, kN, 1};
        spec.inductionPorts["i_loop"] = "i";
        spec.arrayBases["a"] = kBaseA;
        spec.arrayBases["b"] = kBaseB;
        spec.arrayBases["out"] = kBaseOut;

        std::vector<Word> va = inputs(0), vb = inputs(1);
        spec.memoryImage.assign(kBaseB + kN, 0);
        for (int i = 0; i < kN; ++i) {
            spec.memoryImage[static_cast<std::size_t>(i)] =
                va[static_cast<std::size_t>(i)];
            spec.memoryImage[static_cast<std::size_t>(kBaseB +
                                                      i)] =
                vb[static_cast<std::size_t>(i)];
        }
        std::vector<Word> out(kN);
        for (int i = 0; i < kN; ++i)
            out[static_cast<std::size_t>(i)] =
                3 * va[static_cast<std::size_t>(i)] +
                vb[static_cast<std::size_t>(i)];
        spec.observePorts = {"out"};
        spec.expectedOutputs = {out};
        spec.expectedMemory = {{"out", kBaseOut, out}};
        return spec;
    }

    std::uint64_t
    runGolden(KernelRecorder &rec) const override
    {
        std::vector<Word> va = inputs(0), vb = inputs(1);
        std::uint64_t sum = 0;
        rec.round(0);
        for (int i = 0; i < kN; ++i) {
            rec.iteration(0);
            rec.block(1);
            sum += static_cast<std::uint64_t>(static_cast<UWord>(
                3 * va[static_cast<std::size_t>(i)] +
                vb[static_cast<std::size_t>(i)]));
        }
        rec.block(2);
        return sum;
    }
};

} // namespace

int
main()
{
    // ---- 1. Compile through the unified pass pipeline. ----
    MachineConfig config; // 4x4 array, paper defaults.
    QuickstartWorkload kernel;
    CompileResult r = Compiler(config).compile(kernel);
    if (!r.ok()) {
        std::printf("compile failed:\n%s",
                    r.report.toString().c_str());
        return 1;
    }
    std::printf("%s\n", r.kernel->program.disassemble().c_str());
    std::printf("compile report:\n%s\n",
                r.report.toString().c_str());

    // The binary configuration stream round-trips (Sec. 4.4).
    auto words = encodeProgram(r.kernel->program);
    std::printf("binary configuration: %zu words\n\n",
                words.size());

    // ---- 2. Load, run, cross-validate. ----
    MarionetteMachine machine(config);
    machine.load(decodeProgram(words));
    machine.scratchpad().load(0, r.kernel->memoryImage);
    for (const BootInjection &bi : r.kernel->boots)
        machine.injectData(bi.pe, bi.channel, bi.value);

    RunResult result = machine.run(r.kernel->cycleBudget);
    std::printf("ran %llu cycles (%s), %llu FU fires, "
                "%.1f%% PE utilization\n",
                static_cast<unsigned long long>(result.cycles),
                result.finished ? "quiesced" : "cycle limit",
                static_cast<unsigned long long>(result.totalFires),
                100.0 * result.peUtilization);

    std::string err = r.kernel->validate(machine, result);
    std::printf("%s%s\n", err.empty() ? "PASS: bit-exact output "
                                        "stream and memory"
                                      : "FAIL: ",
                err.c_str());
    return err.empty() ? 0 : 1;
}
