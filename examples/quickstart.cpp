/**
 * @file
 * Quickstart: the paper's Fig. 1 flow in fifty lines.
 *
 * Builds a single-block DFG (out[i] = 3 * a[i] + b[i]), lets the
 * compiler map it spatially — a loop-generator PE streaming the
 * induction variable into a producer/consumer pipeline at II = 1 —
 * runs it on the cycle-accurate Marionette machine, and verifies
 * the scratchpad against a host-side golden loop.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/marionette.h"

using namespace marionette;

int
main()
{
    constexpr int n = 256;
    constexpr Word base_a = 0, base_b = 512, base_out = 1024;

    // ---- 1. Describe the kernel as a DFG. ----
    Dfg dfg;
    int iv = dfg.addInput("i"); // input 0 = induction variable.
    NodeId addr_a = dfg.addNode(Opcode::Add, Operand::input(iv),
                                Operand::imm(base_a));
    NodeId a = dfg.addNode(Opcode::Load, Operand::node(addr_a));
    NodeId addr_b = dfg.addNode(Opcode::Add, Operand::input(iv),
                                Operand::imm(base_b));
    NodeId b = dfg.addNode(Opcode::Load, Operand::node(addr_b));
    NodeId scaled = dfg.addNode(Opcode::Mul, Operand::node(a),
                                Operand::imm(3));
    NodeId sum = dfg.addNode(Opcode::Add, Operand::node(scaled),
                             Operand::node(b));
    NodeId addr_o = dfg.addNode(Opcode::Add, Operand::input(iv),
                                Operand::imm(base_out));
    dfg.addNode(Opcode::Store, Operand::node(addr_o),
                Operand::node(sum));
    dfg.addOutput("out", sum);

    // ---- 2. Compile: loop generator + spatial pipeline. ----
    MachineConfig config; // 4x4 array, paper defaults.
    LoopSpec loop{0, n, 1, /*ii=*/1};
    Program program = mapLoopedDfg("quickstart", config, dfg, loop);
    std::printf("%s\n", program.disassemble().c_str());

    // The binary configuration stream round-trips (Sec. 4.4).
    auto words = encodeProgram(program);
    std::printf("binary configuration: %zu words\n\n",
                words.size());

    // ---- 3. Load data, run, verify. ----
    MarionetteMachine machine(config);
    machine.load(decodeProgram(words));

    Rng rng(42);
    std::vector<Word> va(n), vb(n);
    for (int i = 0; i < n; ++i) {
        va[static_cast<std::size_t>(i)] =
            static_cast<Word>(rng.nextRange(-100, 100));
        vb[static_cast<std::size_t>(i)] =
            static_cast<Word>(rng.nextRange(-100, 100));
    }
    machine.scratchpad().load(base_a, va);
    machine.scratchpad().load(base_b, vb);

    RunResult result = machine.run();
    std::printf("ran %llu cycles (%s), %llu FU fires, "
                "%.1f%% PE utilization\n",
                static_cast<unsigned long long>(result.cycles),
                result.finished ? "quiesced" : "cycle limit",
                static_cast<unsigned long long>(result.totalFires),
                100.0 * result.peUtilization);

    int errors = 0;
    for (int i = 0; i < n; ++i) {
        Word want = 3 * va[static_cast<std::size_t>(i)] +
                    vb[static_cast<std::size_t>(i)];
        Word got = machine.scratchpad().read(base_out + i);
        if (want != got) {
            if (++errors <= 4)
                std::printf("  MISMATCH out[%d]: want %d got %d\n",
                            i, want, got);
        }
    }
    std::printf("%s: %d/%d outputs correct\n",
                errors == 0 ? "PASS" : "FAIL", n - errors, n);
    return errors == 0 ? 0 : 1;
}
