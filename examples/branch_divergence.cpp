/**
 * @file
 * Branch Divergence on the control flow plane (paper Fig. 7b).
 *
 * A streaming threshold kernel:
 *
 *     for (i = 0; i < n; ++i)
 *         out[i] = in[i] > T ? in[i] * 2   // BB 2 (taken)
 *                            : in[i] + 1;  // BB 3 (not taken)
 *
 * Mapping (one instruction address per basic block):
 *   PE0  loop generator           (addr 0, Loop operator mode)
 *   PE1  load in[i]               (addr 0, DFG operator mode)
 *   PE2  branch: in[i] > T        (addr 0, Branch operator mode)
 *        -> steers PE3 between addresses 1 and 2 peer-to-peer
 *   PE3  addr 1: v*2   addr 2: v+1   (the merged branch target of
 *        Fig. 7b — both paths share ONE PE, selected per element
 *        by the control word; lockstep-gated)
 *   PE4  store out[i]             (addr 0)
 *
 * The run demonstrates Proactive PE Configuration: PE3's next
 * configuration travels on the control plane while its data flow
 * part is still computing the current element, so the branch
 * target PE never idles for configuration (compare the per-PE
 * `config_switches` vs `fires` statistics printed below).
 */

#include <cstdio>
#include <vector>

#include "core/marionette.h"

using namespace marionette;

int
main()
{
    constexpr int n = 128;
    constexpr Word threshold = 50;
    constexpr Word base_in = 0, base_out = 256;

    MachineConfig config;
    ProgramBuilder builder("branch_divergence", config);
    builder.setNumOutputs(1);

    // PE0: loop generator streaming i to the load and the store.
    {
        Instruction &gen = builder.place(0, 0);
        gen.mode = SenderMode::LoopOp;
        gen.op = Opcode::Loop;
        gen.loopStart = 0;
        gen.loopBound = n;
        gen.loopStep = 1;
        gen.pipelineII = 1;
        gen.dests = {DestSel::toPe(1, 0), DestSel::toPe(4, 0)};
        builder.setEntry(0, 0);
    }
    // PE1: v = in[i]; feeds both the branch unit and the target PE.
    {
        Instruction &load = builder.place(1, 0);
        load.mode = SenderMode::Dfg;
        load.op = Opcode::Load;
        load.a = OperandSel::channel(0);
        load.memBase = base_in;
        load.dests = {DestSel::toPe(2, 0), DestSel::toPe(3, 0)};
        builder.setEntry(1, 0);
    }
    // PE2: branch operator mode — autonomously reconfigures PE3.
    {
        Instruction &br = builder.place(2, 0);
        br.mode = SenderMode::BranchOp;
        br.op = Opcode::CmpGt;
        br.a = OperandSel::channel(0);
        br.b = OperandSel::immediate(threshold);
        br.takenAddr = 1;
        br.notTakenAddr = 2;
        br.ctrlDests = {3};
        builder.setEntry(2, 0);
    }
    // PE3: the merged branch target (Fig. 7b).  Address 1 doubles,
    // address 2 increments; both read channel 0 and feed the store.
    for (InstrAddr addr : {1, 2}) {
        Instruction &lane = builder.place(3, addr);
        lane.mode = SenderMode::Dfg;
        lane.op = addr == 1 ? Opcode::Mul : Opcode::Add;
        lane.a = OperandSel::channel(0);
        lane.b = OperandSel::immediate(addr == 1 ? 2 : 1);
        lane.dests = {DestSel::toPe(4, 1)};
        lane.ctrlGated = true; // one firing per control word.
    }
    // PE4: out[i] = result.
    {
        Instruction &st = builder.place(4, 0);
        st.mode = SenderMode::Dfg;
        st.op = Opcode::Store;
        st.a = OperandSel::channel(0); // address (i).
        st.b = OperandSel::channel(1); // value.
        st.memBase = base_out;
        builder.setEntry(4, 0);
    }

    Program program = builder.finish();
    std::printf("%s\n", program.disassemble().c_str());

    MarionetteMachine machine(config);
    machine.load(program);

    Rng rng(7);
    std::vector<Word> in(n);
    for (Word &v : in)
        v = static_cast<Word>(rng.nextRange(0, 100));
    machine.scratchpad().load(base_in, in);

    RunResult result = machine.run();
    std::printf("ran %llu cycles (%s)\n",
                static_cast<unsigned long long>(result.cycles),
                result.finished ? "quiesced" : "cycle limit");
    std::printf("PE3 (merged branch target): fires=%llu "
                "config_switches=%llu sustained=%llu\n",
                static_cast<unsigned long long>(
                    machine.peStats(3).value("fires")),
                static_cast<unsigned long long>(
                    machine.peStats(3).value("config_switches")),
                static_cast<unsigned long long>(
                    machine.peStats(3).value("ctrl_sustained")));

    int errors = 0;
    for (int i = 0; i < n; ++i) {
        Word v = in[static_cast<std::size_t>(i)];
        Word want = v > threshold ? v * 2 : v + 1;
        Word got = machine.scratchpad().read(base_out + i);
        if (want != got && ++errors <= 4)
            std::printf("  MISMATCH out[%d]: want %d got %d\n", i,
                        want, got);
    }
    std::printf("%s: %d/%d outputs correct\n",
                errors == 0 ? "PASS" : "FAIL", n - errors, n);
    return errors == 0 ? 0 : 1;
}
