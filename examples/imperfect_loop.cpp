/**
 * @file
 * Imperfect Loop with Agile PE Assignment machinery (paper
 * Fig. 3b / Sec. 4.3): sparse matrix-vector multiply.
 *
 *     for (i = 0; i < rows; ++i)                  // outer BB
 *         for (j = rD[i]; j < rD[i+1]; ++j)       // inner BB
 *             sum += val[j] * vec[cols[j]];
 *
 * The outer loop's per-row bounds flow through **Control FIFOs**
 * into the inner loop generator's start/bound ports, so the inner
 * pipeline starts round after round without reconfiguring the
 * outer block onto PEs — the Control Flow Scheduler mechanism that
 * Agile PE Assignment builds on.
 *
 * Mapping:
 *   PE0  outer loop generator (i)
 *   PE1  load rD[i]     -> push control FIFO 0 (round starts)
 *   PE2  load rD[i+1]   -> push control FIFO 1 (round bounds)
 *   PE3  inner loop generator (j), start/bound popped from FIFOs
 *   PE4  load val[j]
 *   PE5  load cols[j]
 *   PE6  load vec[cols[j]]
 *   PE7  val * vec
 *   PE8  accumulator (self-loop channel), emits running sum
 */

#include <cstdio>
#include <vector>

#include "core/marionette.h"

using namespace marionette;

int
main()
{
    constexpr int rows = 24;
    constexpr int max_nnz_per_row = 8;
    constexpr Word base_rd = 0;      // rows+1 row delimiters.
    constexpr Word base_val = 64;    // nonzero values.
    constexpr Word base_cols = 384;  // column indices.
    constexpr Word base_vec = 704;   // dense vector.

    // ---- Synthesize a sparse matrix. ----
    Rng rng(11);
    std::vector<Word> rd{0};
    std::vector<Word> val, cols;
    for (int i = 0; i < rows; ++i) {
        int nnz = static_cast<int>(
            rng.nextBounded(max_nnz_per_row + 1));
        for (int k = 0; k < nnz; ++k) {
            val.push_back(
                static_cast<Word>(rng.nextRange(-9, 9)));
            cols.push_back(
                static_cast<Word>(rng.nextBounded(64)));
        }
        rd.push_back(static_cast<Word>(val.size()));
    }
    std::vector<Word> vec(64);
    for (Word &v : vec)
        v = static_cast<Word>(rng.nextRange(-5, 5));

    Word golden = 0;
    for (int i = 0; i < rows; ++i)
        for (Word j = rd[static_cast<std::size_t>(i)];
             j < rd[static_cast<std::size_t>(i + 1)]; ++j)
            golden += val[static_cast<std::size_t>(j)] *
                      vec[static_cast<std::size_t>(
                          cols[static_cast<std::size_t>(j)])];

    // ---- Build the program. ----
    MachineConfig config;
    ProgramBuilder builder("spmv", config);
    builder.setNumOutputs(1);

    {   // PE0: outer loop over rows.
        Instruction &gen = builder.place(0, 0);
        gen.mode = SenderMode::LoopOp;
        gen.op = Opcode::Loop;
        gen.loopStart = 0;
        gen.loopBound = rows;
        gen.pipelineII = 1;
        gen.dests = {DestSel::toPe(1, 0), DestSel::toPe(2, 0)};
        builder.setEntry(0, 0);
    }
    {   // PE1: rD[i] -> control FIFO 0 (inner round start).
        Instruction &ld = builder.place(1, 0);
        ld.mode = SenderMode::Dfg;
        ld.op = Opcode::Load;
        ld.a = OperandSel::channel(0);
        ld.memBase = base_rd;
        ld.pushFifo = 0;
        builder.setEntry(1, 0);
    }
    {   // PE2: rD[i+1] -> control FIFO 1 (inner round bound).
        Instruction &ld = builder.place(2, 0);
        ld.mode = SenderMode::Dfg;
        ld.op = Opcode::Load;
        ld.a = OperandSel::channel(0);
        ld.memBase = base_rd + 1;
        ld.pushFifo = 1;
        builder.setEntry(2, 0);
    }
    {   // PE3: inner loop generator fed by the control FIFOs.
        Instruction &gen = builder.place(3, 0);
        gen.mode = SenderMode::LoopOp;
        gen.op = Opcode::Loop;
        gen.startFifo = 0;
        gen.boundFifo = 1;
        gen.pipelineII = 1;
        gen.dests = {DestSel::toPe(4, 0), DestSel::toPe(5, 0)};
        builder.setEntry(3, 0);
    }
    {   // PE4: val[j].
        Instruction &ld = builder.place(4, 0);
        ld.mode = SenderMode::Dfg;
        ld.op = Opcode::Load;
        ld.a = OperandSel::channel(0);
        ld.memBase = base_val;
        ld.dests = {DestSel::toPe(7, 0)};
        builder.setEntry(4, 0);
    }
    {   // PE5: cols[j].
        Instruction &ld = builder.place(5, 0);
        ld.mode = SenderMode::Dfg;
        ld.op = Opcode::Load;
        ld.a = OperandSel::channel(0);
        ld.memBase = base_cols;
        ld.dests = {DestSel::toPe(6, 0)};
        builder.setEntry(5, 0);
    }
    {   // PE6: vec[cols[j]].
        Instruction &ld = builder.place(6, 0);
        ld.mode = SenderMode::Dfg;
        ld.op = Opcode::Load;
        ld.a = OperandSel::channel(0);
        ld.memBase = base_vec;
        ld.dests = {DestSel::toPe(7, 1)};
        builder.setEntry(6, 0);
    }
    {   // PE7: product.
        Instruction &mul = builder.place(7, 0);
        mul.mode = SenderMode::Dfg;
        mul.op = Opcode::Mul;
        mul.a = OperandSel::channel(0);
        mul.b = OperandSel::channel(1);
        mul.dests = {DestSel::toPe(8, 0)};
        builder.setEntry(7, 0);
    }
    {   // PE8: accumulator: sum' = product + sum (self-loop via
        // channel 1, seeded with 0 at boot), streaming partials to
        // output FIFO 0; the last word is the dot product.
        Instruction &acc = builder.place(8, 0);
        acc.mode = SenderMode::Dfg;
        acc.op = Opcode::Add;
        acc.a = OperandSel::channel(0);
        acc.b = OperandSel::channel(1);
        acc.dests = {DestSel::toPe(8, 1), DestSel::toOutput(0)};
        builder.setEntry(8, 0);
    }

    Program program = builder.finish();
    MarionetteMachine machine(config);
    machine.load(program);
    machine.injectData(8, 1, 0); // accumulator seed.

    machine.scratchpad().load(base_rd, rd);
    machine.scratchpad().load(base_val, val);
    machine.scratchpad().load(base_cols, cols);
    machine.scratchpad().load(base_vec, vec);

    RunResult result = machine.run();
    Word sum = result.outputs[0].empty() ? 0
                                         : result.outputs[0].back();

    std::printf("spmv: %d rows, %zu nonzeros\n", rows, val.size());
    std::printf("ran %llu cycles (%s); inner loop rounds=%llu "
                "iterations=%llu\n",
                static_cast<unsigned long long>(result.cycles),
                result.finished ? "quiesced" : "cycle limit",
                static_cast<unsigned long long>(
                    machine.peStats(3).value("loop_rounds")),
                static_cast<unsigned long long>(
                    machine.peStats(3).value("loop_iterations")));
    std::printf("dot product: machine=%d golden=%d -> %s\n", sum,
                golden, sum == golden ? "PASS" : "FAIL");
    return sum == golden ? 0 : 1;
}
